"""Mounts: bind, tmpfs, squashfs-loop, and overlay.

A :class:`MountTable` belongs to one mount namespace.  Cloning the table
(what ``unshare(CLONE_NEWNS)`` does with private propagation) lets a
container arrange its own view — loop-mount its image, bind host
directories — without the host seeing any of it.  Longest-prefix
resolution routes each path to the mount that owns it.

Overlay mounts implement the Docker storage model: the image's layers are
read-only *lower* directories, writes go to a private *upper* through
copy-up — whose cost (bytes copied) the runtimes charge to deployment or
I/O time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.oskernel import vfs as _vfs


class MountError(OSError):
    """Invalid mount operation."""


@dataclass
class Mount:
    """Base mount entry: a filesystem grafted at ``target``."""

    target: str
    fs: "_vfs.FileSystem"
    source_prefix: str = "/"
    readonly: bool = False
    kind: str = "bind"

    def __post_init__(self) -> None:
        self.target = _vfs.normalize(self.target)
        self.source_prefix = _vfs.normalize(self.source_prefix)

    def translate(self, path: str) -> str:
        """Translate an absolute ``path`` under ``target`` into the fs."""
        norm = _vfs.normalize(path)
        if norm == self.target:
            rel = ""
        elif norm.startswith(self.target.rstrip("/") + "/"):
            rel = norm[len(self.target.rstrip("/")):]
        else:
            raise MountError(f"{path!r} not under mount {self.target!r}")
        base = self.source_prefix.rstrip("/")
        return (base + rel) or "/"


class OverlayFS(_vfs.FileSystem):
    """Union filesystem: ordered read-only lowers + one writable upper.

    Lookup order is upper, then lowers top-to-bottom; deletions are
    recorded as whiteouts.  Writes copy nothing eagerly; the
    :attr:`bytes_copied_up` counter accumulates copy-up volume so callers
    can charge the I/O cost.
    """

    def __init__(
        self,
        lowers: Sequence[_vfs.FileSystem],
        upper: Optional[_vfs.FileSystem] = None,
        label: str = "overlay",
    ) -> None:
        super().__init__(label)
        if not lowers:
            raise MountError("overlay needs at least one lower layer")
        self.lowers = list(lowers)
        self.upper = upper or _vfs.FileSystem(label + "-upper")
        self.whiteouts: set[str] = set()
        self.bytes_copied_up = 0.0

    # -- resolution across layers ------------------------------------------------
    def _layer_with(self, path: str) -> Optional[_vfs.FileSystem]:
        norm = _vfs.normalize(path)
        if norm in self.whiteouts:
            return None
        if self.upper.exists(norm):
            return self.upper
        for lower in self.lowers:
            if lower.exists(norm):
                return lower
        return None

    def lookup(self, path: str) -> _vfs.Node:
        layer = self._layer_with(path)
        if layer is None:
            raise _vfs.VfsError(f"{path!r}: no such file or directory")
        return layer.lookup(path)

    def exists(self, path: str) -> bool:
        return self._layer_with(path) is not None

    def listdir(self, path: str) -> list[str]:
        names: set[str] = set()
        found = False
        base = _vfs.normalize(path).rstrip("/")
        for layer in [self.upper, *self.lowers]:
            if layer.is_dir(path):
                found = True
                names.update(layer.listdir(path))
        if not found:
            raise _vfs.VfsError(f"{path!r}: not a directory")
        visible = {
            n for n in names if (base + "/" + n) not in self.whiteouts
        }
        return sorted(visible)

    # -- writes (all go to upper) -------------------------------------------------
    def mkdir(self, path: str, parents: bool = False):
        self.whiteouts.discard(_vfs.normalize(path))
        return self.upper.mkdir(path, parents=True)

    def write_file(self, path: str, size: float, parents: bool = False):
        norm = _vfs.normalize(path)
        self.whiteouts.discard(norm)
        layer = self._layer_with(norm)
        if layer is not None and layer is not self.upper:
            node = layer.lookup(norm)
            if isinstance(node, _vfs.File):
                # Copy-up: modifying a lower file materialises it above.
                self.bytes_copied_up += node.size
        return self.upper.write_file(path, size, parents=True)

    def remove(self, path: str) -> None:
        norm = _vfs.normalize(path)
        if self.upper.exists(norm):
            self.upper.remove(norm)
            # A lower copy may still shine through; white it out.
            if any(lower.exists(norm) for lower in self.lowers):
                self.whiteouts.add(norm)
        elif any(lower.exists(norm) for lower in self.lowers):
            if norm in self.whiteouts:
                raise _vfs.VfsError(f"{path!r}: no such file or directory")
            self.whiteouts.add(norm)
        else:
            raise _vfs.VfsError(f"{path!r}: no such file or directory")

    def du(self, path: str = "/") -> float:
        total = 0.0
        seen: set[str] = set()
        for layer in [self.upper, *self.lowers]:
            try:
                files = list(layer.walk_files(path))
            except _vfs.VfsError:
                continue
            for abspath, f in files:
                if abspath in seen or abspath in self.whiteouts:
                    continue
                seen.add(abspath)
                total += f.size
        return total


class MountTable:
    """The mounts visible in one mount namespace."""

    def __init__(self, rootfs: _vfs.FileSystem) -> None:
        self.rootfs = rootfs
        self.mounts: list[Mount] = []

    # -- namespace semantics -------------------------------------------------------
    def clone(self) -> "MountTable":
        """Private copy of the table (new mount namespace)."""
        table = MountTable(self.rootfs)
        table.mounts = list(self.mounts)
        return table

    # -- mounting ---------------------------------------------------------------
    def bind(
        self,
        source_fs: _vfs.FileSystem,
        source_path: str,
        target: str,
        readonly: bool = False,
    ) -> Mount:
        """Bind ``source_fs:source_path`` at ``target``."""
        if not source_fs.is_dir(source_path):
            raise MountError(f"bind source {source_path!r} is not a directory")
        m = Mount(target, source_fs, source_path, readonly, kind="bind")
        self.mounts.append(m)
        return m

    def mount_tmpfs(self, target: str) -> Mount:
        """A fresh empty tmpfs at ``target``."""
        m = Mount(target, _vfs.FileSystem("tmpfs"), "/", False, kind="tmpfs")
        self.mounts.append(m)
        return m

    def mount_squashfs(self, image_tree: _vfs.FileSystem, target: str) -> Mount:
        """Loop-mount a squashfs image (always read-only)."""
        m = Mount(target, image_tree, "/", True, kind="squashfs")
        self.mounts.append(m)
        return m

    def mount_overlay(
        self,
        lowers: Sequence[_vfs.FileSystem],
        target: str,
        upper: Optional[_vfs.FileSystem] = None,
    ) -> Mount:
        """Mount an overlay of ``lowers`` (+ writable upper) at ``target``."""
        overlay = OverlayFS(lowers, upper)
        m = Mount(target, overlay, "/", False, kind="overlay")
        self.mounts.append(m)
        return m

    def unmount(self, target: str) -> None:
        """Remove the most recent mount at ``target``."""
        norm = _vfs.normalize(target)
        for i in range(len(self.mounts) - 1, -1, -1):
            if self.mounts[i].target == norm:
                del self.mounts[i]
                return
        raise MountError(f"nothing mounted at {target!r}")

    # -- resolution ---------------------------------------------------------------
    def resolve(self, path: str) -> tuple[_vfs.FileSystem, str, bool]:
        """Route ``path`` to ``(filesystem, inner_path, readonly)``.

        The most recent longest-prefix mount wins, mirroring kernel
        behaviour for stacked mounts.
        """
        norm = _vfs.normalize(path)
        best: Optional[Mount] = None
        best_len = -1
        for m in self.mounts:
            t = m.target.rstrip("/") or "/"
            if norm == t or norm.startswith(t + "/") or t == "/":
                if len(t) >= best_len:
                    best = m
                    best_len = len(t)
        if best is None:
            return self.rootfs, norm, False
        return best.fs, best.translate(norm), best.readonly

    # -- convenience I/O through the table ------------------------------------------
    def exists(self, path: str) -> bool:
        fs, inner, _ = self.resolve(path)
        return fs.exists(inner)

    def listdir(self, path: str) -> list[str]:
        fs, inner, _ = self.resolve(path)
        return fs.listdir(inner)

    def write_file(self, path: str, size: float) -> None:
        fs, inner, readonly = self.resolve(path)
        if readonly:
            raise MountError(f"{path!r}: read-only file system")
        fs.write_file(inner, size, parents=True)

    def mkdir(self, path: str) -> None:
        fs, inner, readonly = self.resolve(path)
        if readonly:
            raise MountError(f"{path!r}: read-only file system")
        fs.mkdir(inner, parents=True)

    def size_of(self, path: str) -> float:
        fs, inner, _ = self.resolve(path)
        return fs.size_of(inner)

    def mounts_at(self, prefix: str = "/") -> list[Mount]:
        """Mounts whose target is at or below ``prefix``."""
        norm = _vfs.normalize(prefix).rstrip("/") or "/"
        return [
            m
            for m in self.mounts
            if m.target == norm or m.target.startswith(norm.rstrip("/") + "/")
            or norm == "/"
        ]
