"""Linux namespaces.

A namespace virtualises one global kernel resource.  Container runtimes
differ in which kinds they unshare; the set determines both isolation
*and* cost: a new NET namespace means the process no longer sees the host
fabric devices — the mechanistic reason Docker's MPI traffic takes the
bridge path while Singularity's does not.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable


class NamespaceKind(enum.Enum):
    """The seven namespace kinds (``man 7 namespaces``)."""

    MOUNT = "mnt"
    PID = "pid"
    NET = "net"
    UTS = "uts"
    IPC = "ipc"
    USER = "user"
    CGROUP = "cgroup"


#: One-time kernel-side setup cost per namespace kind, seconds.  NET is by
#: far the most expensive (device creation, veth pair, addresses, routes);
#: figures follow published `unshare()` microbenchmarks.
SETUP_COST: dict[NamespaceKind, float] = {
    NamespaceKind.MOUNT: 0.0008,
    NamespaceKind.PID: 0.0003,
    NamespaceKind.NET: 0.150,
    NamespaceKind.UTS: 0.0001,
    NamespaceKind.IPC: 0.0002,
    NamespaceKind.USER: 0.0005,
    NamespaceKind.CGROUP: 0.0002,
}

_ns_ids = itertools.count(0xF0000000)


@dataclass(frozen=True)
class Namespace:
    """A single namespace instance."""

    kind: NamespaceKind
    ns_id: int = field(default_factory=lambda: next(_ns_ids))

    def __repr__(self) -> str:  # pragma: no cover
        return f"{self.kind.value}:[{self.ns_id}]"


class NamespaceSet:
    """The full set of namespaces a process lives in."""

    def __init__(self, namespaces: dict[NamespaceKind, Namespace]) -> None:
        missing = set(NamespaceKind) - set(namespaces)
        if missing:
            raise ValueError(f"namespace set missing kinds: {sorted(k.value for k in missing)}")
        self._ns = dict(namespaces)

    @classmethod
    def host(cls) -> "NamespaceSet":
        """A fresh host (init) namespace set."""
        return cls({kind: Namespace(kind) for kind in NamespaceKind})

    def get(self, kind: NamespaceKind) -> Namespace:
        """The namespace of ``kind`` this set refers to."""
        return self._ns[kind]

    def unshare(self, kinds: Iterable[NamespaceKind]) -> "NamespaceSet":
        """New set with fresh namespaces for ``kinds``, sharing the rest."""
        new = dict(self._ns)
        for kind in kinds:
            new[kind] = Namespace(kind)
        return NamespaceSet(new)

    def shares(self, other: "NamespaceSet", kind: NamespaceKind) -> bool:
        """True if both sets refer to the same ``kind`` namespace."""
        return self._ns[kind].ns_id == other._ns[kind].ns_id

    def isolated_kinds(self, host: "NamespaceSet") -> frozenset[NamespaceKind]:
        """Kinds where this set differs from ``host``."""
        return frozenset(
            kind for kind in NamespaceKind if not self.shares(host, kind)
        )

    def sees_host_network(self, host: "NamespaceSet") -> bool:
        """Whether processes here see host network devices (fabric HCAs)."""
        return self.shares(host, NamespaceKind.NET)

    @staticmethod
    def setup_cost(kinds: Iterable[NamespaceKind]) -> float:
        """Total kernel time (s) to unshare ``kinds``.

        Summed in sorted-kind order: set iteration order varies between
        processes (enum members hash by id), and float addition is not
        associative, so an unordered sum would make deployment times —
        and therefore trace digests — differ across processes.
        """
        return sum(SETUP_COST[k] for k in sorted(kinds, key=lambda k: k.value))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NamespaceSet {sorted(k.value for k in self._ns)}>"


#: The namespace kinds Docker unshares for every container (full isolation).
DOCKER_KINDS = frozenset(
    {
        NamespaceKind.MOUNT,
        NamespaceKind.PID,
        NamespaceKind.NET,
        NamespaceKind.UTS,
        NamespaceKind.IPC,
    }
)

#: Singularity's and Shifter's minimal set (§A: "they only handle Mount and
#: PID namespaces").
HPC_KINDS = frozenset({NamespaceKind.MOUNT, NamespaceKind.PID})
