"""Request serving for experiment studies: the system's front door.

Where :mod:`repro.exec` distributes one caller's grid across processes,
:mod:`repro.serve` multiplexes *many callers* onto one executor:

- :mod:`repro.serve.service` — :class:`StudyService`, an asyncio
  single-flight layer: concurrent identical requests (same
  :func:`~repro.exec.speckey.spec_key`) collapse to one execution,
  compatible requests micro-batch into shared
  :meth:`~repro.exec.executor.ExperimentExecutor.run_many` submissions,
  and admission control rejects (with a ``retry_after`` hint) instead of
  queueing without bound.  :meth:`~StudyService.drain` completes all
  admitted work while refusing new requests.
- :mod:`repro.serve.requests` — the JSON request dialect the
  ``repro-serve`` CLI and the throughput benchmark replay.
- :mod:`repro.serve.cli` — the ``repro-serve`` entry point.

Semantics, metric names and the backpressure contract are documented in
``docs/serving.md``; the measured win over naive per-request execution
lives in ``benchmarks/bench_serve_throughput.py``.
"""

from repro.serve.requests import RequestGroup, build_spec, parse_script
from repro.serve.service import (
    Overloaded,
    RequestFailed,
    ServeError,
    ServeStats,
    ServiceClosed,
    StudyService,
)

__all__ = [
    "Overloaded",
    "RequestFailed",
    "RequestGroup",
    "ServeError",
    "ServeStats",
    "ServiceClosed",
    "StudyService",
    "build_spec",
    "parse_script",
]
