"""Request serving for experiment studies: the system's front door.

Where :mod:`repro.exec` distributes one caller's grid across processes,
:mod:`repro.serve` multiplexes *many callers* onto one executor:

- :mod:`repro.serve.service` — :class:`StudyService`, an asyncio
  single-flight layer: concurrent identical requests (same
  :func:`~repro.exec.speckey.spec_key`) collapse to one execution,
  compatible requests micro-batch into shared
  :meth:`~repro.exec.executor.ExperimentExecutor.run_many` submissions,
  and admission control rejects (with a ``retry_after`` hint) instead of
  queueing without bound.  :meth:`~StudyService.drain` completes all
  admitted work while refusing new requests.
- :mod:`repro.serve.cluster` — :class:`StudyCluster`, the sharded
  front end: N worker processes (own executor + in-memory L1, shared
  on-disk L2) behind a :class:`~repro.serve.router.ShardRouter` that
  consistent-hashes :func:`~repro.exec.speckey.spec_key`, making the
  per-shard single-flight globally single-flight.  Self-healing by
  default: a supervisor detects dead and wedged workers, respawns
  them, and replays their in-flight requests.
- :mod:`repro.serve.breaker` — :class:`CircuitBreaker`, the
  deterministic per-shard closed → open → half-open state machine
  that routes traffic to the degraded fallback path while a shard
  flaps.
- :mod:`repro.serve.router` — the consistent-hash ring (stable,
  balanced, minimally disruptive on resize).
- :mod:`repro.serve.loadgen` — seeded zipfian traffic generation,
  the deterministic scoreboard, and seeded :class:`ChaosPlan` fault
  schedules ("millions of users" replay harness + chaos harness).
- :mod:`repro.serve.requests` — the JSON request dialect the
  ``repro-serve`` CLI and the throughput benchmark replay.
- :mod:`repro.serve.cli` — the ``repro-serve`` entry point.

Semantics, metric names and the backpressure contract are documented in
``docs/serving.md``; the measured win over naive per-request execution
lives in ``benchmarks/bench_serve_throughput.py``.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.cluster import (
    ClusterStats,
    ShardConfig,
    ShardDown,
    StudyCluster,
)
from repro.serve.loadgen import (
    ChaosOp,
    ChaosPlan,
    LoadReport,
    ZipfianMix,
    balanced_universe,
    default_universe,
    run_load,
    scoreboard,
    zipfian_sequence,
)
from repro.serve.requests import RequestGroup, build_spec, parse_script
from repro.serve.router import ShardRouter
from repro.serve.service import (
    DeadlineExceeded,
    Overloaded,
    RequestFailed,
    ServeError,
    ServeStats,
    ServiceClosed,
    StudyService,
)

__all__ = [
    "ChaosOp",
    "ChaosPlan",
    "CircuitBreaker",
    "ClusterStats",
    "DeadlineExceeded",
    "LoadReport",
    "Overloaded",
    "RequestFailed",
    "RequestGroup",
    "ServeError",
    "ServeStats",
    "ServiceClosed",
    "ShardConfig",
    "ShardDown",
    "ShardRouter",
    "StudyCluster",
    "StudyService",
    "ZipfianMix",
    "balanced_universe",
    "build_spec",
    "default_universe",
    "parse_script",
    "run_load",
    "scoreboard",
    "zipfian_sequence",
]
