"""The single-flight study service.

:class:`StudyService` is the asyncio front door over
:class:`~repro.exec.executor.ExperimentExecutor`: callers ``await
submit(spec)`` and get an :class:`~repro.core.metrics.ExperimentResult`
back, while the service collapses duplicate work and bounds the damage
of overload.  Three mechanisms do all of it:

Single-flight
    Every admitted spec becomes a *flight* keyed by its
    :func:`~repro.exec.speckey.spec_key`.  A request whose key already
    has a flight in progress attaches to that flight instead of opening
    a new one, so N concurrent identical requests cost exactly one
    simulation, one cache write and N responses (all carrying the same
    result payload).  The flight is retired only after its waiters are
    resolved — a request arriving *after* completion opens a fresh
    flight (which the executor's result cache then answers cheaply).

Micro-batching
    Admitted flights queue briefly (``batch_window`` seconds, at most
    ``max_batch`` flights) and are submitted to the executor as one
    :meth:`~repro.exec.executor.ExperimentExecutor.run_many` call, so
    the executor's process pool amortises across requests the way it
    already amortises across grid points.  The blocking ``run_many``
    runs on a worker thread; the event loop keeps admitting.

Admission control
    At most ``max_pending`` flights may be in the building (queued or
    executing).  Request N+1 with a *new* key is rejected immediately
    with :class:`Overloaded` carrying a ``retry_after`` hint — explicit
    backpressure beats an unbounded queue collapsing under its own
    latency.  Piggybacking on an existing flight is always admitted (it
    adds no work).  :meth:`drain` stops admissions and completes every
    in-flight request before returning — graceful shutdown never drops
    accepted work.

Everything is instrumented through :mod:`repro.obs` (counters
``serve.requests`` / ``serve.dedup_hits`` / ``serve.rejected`` /
``serve.batches`` / ``serve.failures``, gauges ``serve.queue_depth`` /
``serve.batch_size``, histogram ``serve.request_seconds``, and one
``serve.request`` span per completed request), and mirrored in
:class:`ServeStats` which additionally keeps exact request latencies for
p50/p95/p99 reporting.  See ``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.experiment import ExperimentSpec
from repro.core.metrics import ExperimentResult
from repro.exec.executor import ExperimentExecutor
from repro.exec.failures import FailedPoint
from repro.exec.speckey import spec_key
from repro.obs.span import Observability


class ServeError(RuntimeError):
    """Base class of everything the service can raise to a caller."""


class Overloaded(ServeError):
    """Admission refused: the pending-flight queue is full.

    Attributes
    ----------
    retry_after:
        Seconds after which a retry has a realistic chance — the time
        the current backlog needs to clear one batch.
    """

    def __init__(self, pending: int, retry_after: float) -> None:
        super().__init__(
            f"study service overloaded: {pending} flights pending; "
            f"retry after {retry_after:.3f}s"
        )
        self.pending = pending
        self.retry_after = retry_after


class ServiceClosed(ServeError):
    """Request refused: the service is draining or has shut down."""


class DeadlineExceeded(ServeError):
    """The request's deadline lapsed before its flight landed.

    Raised by :meth:`StudyCluster.submit(spec, deadline=...)
    <repro.serve.cluster.StudyCluster.submit>` — either because the
    waiter's own budget ran out while it waited on a shared flight, or
    because the owning worker cancelled the spec before executing it
    (worker-side cancellation: a queued spec whose budget lapsed is
    never run).  ``deadline`` is the request's budget in seconds.
    """

    def __init__(self, key: str, deadline: float) -> None:
        super().__init__(
            f"request deadline of {deadline:.3f}s exceeded "
            f"(key {key[:12]}…)"
        )
        self.key = key
        self.deadline = deadline


class RequestFailed(ServeError):
    """The simulation behind a request failed deterministically.

    Wraps the :class:`~repro.exec.failures.FailedPoint` (or the raw
    executor exception message) so every waiter of the flight sees the
    same diagnosis.
    """

    def __init__(self, point: Optional[FailedPoint], detail: str) -> None:
        super().__init__(detail)
        self.point = point


@dataclass
class ServeStats:
    """Cumulative accounting of one service's traffic."""

    requests: int = 0
    #: Requests that attached to an already-in-flight identical spec.
    dedup_hits: int = 0
    rejected: int = 0
    batches: int = 0
    #: Flights handed to the executor (= unique specs actually driven).
    flights: int = 0
    failures: int = 0
    #: Per-request wall-clock latencies [s], completed requests only.
    latencies: list = field(default_factory=list)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the completed-request latencies.

        ``p`` in [0, 100]; returns 0.0 when nothing has completed yet.
        """
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile out of range: {p}")
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without math
        return ordered[int(rank) - 1]

    def latency_summary(self) -> dict:
        return {
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "dedup_hits": self.dedup_hits,
            "rejected": self.rejected,
            "batches": self.batches,
            "flights": self.flights,
            "failures": self.failures,
            "latency": self.latency_summary(),
        }


class _Flight:
    """One admitted unique spec: the work unit batching operates on."""

    __slots__ = ("key", "spec", "future", "waiters")

    def __init__(self, key: str, spec: ExperimentSpec, future) -> None:
        self.key = key
        self.spec = spec
        self.future = future
        self.waiters = 1


class StudyService:
    """Serve experiment requests over a shared executor.

    Parameters
    ----------
    executor:
        The :class:`ExperimentExecutor` driving the actual simulations.
        Defaults to a serial, cached, ``keep_going`` executor —
        ``keep_going`` matters: one failing spec must annotate its own
        flight, not abort its batchmates.
    max_pending:
        Admission bound on flights in the building (queued + executing).
    batch_window:
        Seconds an admitted flight waits for company before its batch is
        sealed.  0 disables the wait (each batch takes whatever is
        already queued).
    max_batch:
        Hard cap on flights per executor submission.
    obs:
        Metrics/span sink; a fresh :class:`Observability` by default
        (exposed as :attr:`obs` either way).
    """

    def __init__(
        self,
        executor: Optional[ExperimentExecutor] = None,
        max_pending: int = 64,
        batch_window: float = 0.005,
        max_batch: int = 16,
        obs: Optional[Observability] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        self.executor = executor or ExperimentExecutor(
            workers=1, cache=True, keep_going=True
        )
        self.max_pending = max_pending
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.obs = obs or Observability()
        self.stats = ServeStats()
        #: key -> flight, for every flight not yet retired.
        self._inflight: dict[str, _Flight] = {}
        self._queue: deque[_Flight] = deque()
        self._wake: Optional[asyncio.Event] = None
        self._worker: Optional[asyncio.Task] = None
        self._draining = False
        self._closed = False
        self._t0 = time.monotonic()

    # -- lifecycle -----------------------------------------------------------
    async def __aenter__(self) -> "StudyService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()

    @property
    def pending(self) -> int:
        """Flights currently in the building (queued + executing)."""
        return len(self._inflight)

    def _ensure_worker(self) -> None:
        if self._wake is None:
            self._wake = asyncio.Event()
        if self._worker is None or self._worker.done():
            self._worker = asyncio.get_running_loop().create_task(
                self._batch_loop(), name="repro-serve-batcher"
            )

    async def drain(self) -> None:
        """Refuse new admissions, finish every in-flight request.

        Idempotent; after it returns, :meth:`submit` raises
        :class:`ServiceClosed` and all previously admitted futures are
        resolved.
        """
        self._draining = True
        if self._wake is not None:
            self._wake.set()
        if self._worker is not None:
            await self._worker
            self._worker = None
        self._closed = True

    # -- the request path ----------------------------------------------------
    async def submit(self, spec: ExperimentSpec) -> ExperimentResult:
        """Serve one request; resolves when its flight lands.

        Raises :class:`Overloaded` (carrying ``retry_after``) when
        admission control refuses the request, :class:`ServiceClosed`
        after :meth:`drain`, and :class:`RequestFailed` when the
        simulation itself failed.
        """
        t_start = time.monotonic()
        self.stats.requests += 1
        self.obs.metrics.counter("serve.requests").inc()
        if self._draining or self._closed:
            raise ServiceClosed("study service is draining; not admitting")
        key = spec_key(spec)
        flight = self._inflight.get(key)
        deduped = flight is not None
        if deduped:
            flight.waiters += 1
            self.stats.dedup_hits += 1
            self.obs.metrics.counter("serve.dedup_hits").inc()
        else:
            if len(self._inflight) >= self.max_pending:
                self.stats.rejected += 1
                self.obs.metrics.counter("serve.rejected").inc()
                raise Overloaded(
                    pending=len(self._inflight),
                    retry_after=self._retry_after(),
                )
            self._ensure_worker()
            flight = _Flight(
                key, spec, asyncio.get_running_loop().create_future()
            )
            self._inflight[key] = flight
            self._queue.append(flight)
            self._gauge_depth()
            self._wake.set()
        # shield: one waiter cancelling must not cancel the shared
        # flight — the other waiters (and the cache write) still want it.
        try:
            outcome = await asyncio.shield(flight.future)
        except RequestFailed:
            self.stats.failures += 1
            self.obs.metrics.counter("serve.failures").inc()
            raise
        latency = time.monotonic() - t_start
        self.stats.latencies.append(latency)
        self.obs.metrics.histogram("serve.request_seconds").observe(latency)
        self.obs.add_span(
            "serve.request", "serve",
            t_start - self._t0, t_start - self._t0 + latency,
            track="serve", key=key, deduped=deduped,
        )
        if isinstance(outcome, FailedPoint):
            self.stats.failures += 1
            self.obs.metrics.counter("serve.failures").inc()
            raise RequestFailed(
                outcome,
                f"request {spec.name!r} failed: {outcome.error_type}: "
                f"{outcome.error}",
            )
        return outcome

    def _retry_after(self) -> float:
        """Backpressure hint: batches needed to clear the backlog times
        the batch window (floored at one window so it is never 0)."""
        backlog_batches = -(-len(self._inflight) // self.max_batch)
        return max(self.batch_window, 0.001) * max(1, backlog_batches)

    def _gauge_depth(self) -> None:
        self.obs.metrics.gauge("serve.queue_depth").set(len(self._inflight))

    # -- the batching worker -------------------------------------------------
    async def _batch_loop(self) -> None:
        while True:
            while not self._queue and not self._draining:
                self._wake.clear()
                await self._wake.wait()
            if not self._queue:
                return  # draining and nothing left
            if self.batch_window > 0 and not self._draining:
                # Hold the batch open briefly so concurrent arrivals
                # share the executor submission.
                await asyncio.sleep(self.batch_window)
            batch = [
                self._queue.popleft()
                for _ in range(min(self.max_batch, len(self._queue)))
            ]
            await self._run_batch(batch)

    async def _run_batch(self, batch: Sequence[_Flight]) -> None:
        self.stats.batches += 1
        self.stats.flights += len(batch)
        self.obs.metrics.counter("serve.batches").inc()
        self.obs.metrics.gauge("serve.batch_size").set(len(batch))
        specs = [f.spec for f in batch]
        # The executor runs on a thread (run_many blocks); it writes
        # into its own fresh Observability which is merged back on the
        # loop thread afterwards — no cross-thread mutation.
        batch_obs = Observability()
        loop = asyncio.get_running_loop()
        try:
            outcomes = await loop.run_in_executor(
                None, lambda: self.executor.run_many(specs, obs=batch_obs)
            )
        except Exception as exc:  # fail-fast executor or infra error
            detail = f"batch execution failed: {type(exc).__name__}: {exc}"
            for f in batch:
                if not f.future.done():
                    # One instance per future: a shared exception object
                    # would interleave tracebacks across waiter tasks.
                    f.future.set_exception(RequestFailed(None, detail))
                self._inflight.pop(f.key, None)
            self._gauge_depth()
            return
        self.obs.merge(batch_obs)
        for f, outcome in zip(batch, outcomes):
            if not f.future.done():
                f.future.set_result(outcome)
            # Retire the flight: later identical requests re-submit (and
            # typically hit the executor's result cache).
            self._inflight.pop(f.key, None)
        self._gauge_depth()
