"""Deterministic zipfian load generation for the serving layer.

Real study traffic is head-heavy: a few popular configurations draw
most of the requests while a long tail of variants trickles in — the
classic zipfian shape of "millions of users" hitting a cached endpoint.
This module replays exactly that, reproducibly:

- :func:`zipfian_sequence` draws a request sequence from a Zipf(s)
  distribution using its own arithmetic over ``random.Random(seed)`` —
  the same seed yields the same sequence on every run, every process,
  every ``PYTHONHASHSEED``;
- :func:`default_universe` / :func:`balanced_universe` build families of
  distinct-key, equal-cost :class:`ExperimentSpec`\\ s (the key knob is a
  one-cell nudge to the work model's mesh size — enough to change the
  :func:`~repro.exec.speckey.spec_key`, too small to change the cost);
- :func:`run_load` fires a mix at any target with an async
  ``submit(spec)`` — a :class:`~repro.serve.service.StudyService` or a
  :class:`~repro.serve.cluster.StudyCluster` — under bounded
  concurrency, retrying backpressure rejections with seeded
  decorrelated-jitter backoff (deterministic for a fixed mix seed, yet
  never synchronized into a thundering herd);
- :class:`ChaosPlan` grows the replay a seeded fault schedule — kill
  -9 this shard's worker when request K is issued, wedge (SIGSTOP)
  that one — driving the cluster's self-healing path mid-replay;
- :func:`scoreboard` turns the outcome into the numbers that matter
  (throughput, dedupe ratio, p50/p95/p99, per-shard balance) plus a
  SHA-256 **digest over the seed-determined fields only** (universe
  keys, sequence, response payloads, error count — never wall-clock,
  and never execution counts, which a kill landing between a worker's
  cache write and its reply can legitimately shift by one), so two
  runs of the same seeded mix must report the same digest: cluster vs
  single service, chaos vs calm.  Execution/dedupe exactness is gated
  separately, where the run's fault budget is known.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import random
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.experiment import ExperimentSpec
from repro.exec.speckey import spec_key
from repro.serve.requests import build_spec
from repro.serve.router import ShardRouter
from repro.serve.service import Overloaded, ServeStats
from repro.workloads import get_workload

#: Retry ceiling for Overloaded rejections before a request is recorded
#: as an error (the generator paces itself off ``retry_after``).
MAX_RETRIES = 100


def zipfian_sequence(
    n_items: int, n_requests: int, s: float = 1.1, seed: int = 0
) -> list[int]:
    """``n_requests`` item indices drawn i.i.d. from Zipf(``s``).

    Item ``i`` (0-based) has weight ``1 / (i + 1) ** s``; ``s=0`` is
    uniform, larger ``s`` concentrates traffic on the head.  Sampling is
    inverse-CDF over ``random.Random(seed).random()`` — no dict/set
    iteration anywhere, so the sequence is identical across processes
    and hash seeds.
    """
    if n_items < 1:
        raise ValueError("n_items must be >= 1")
    if n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    if s < 0:
        raise ValueError("zipf exponent must be >= 0")
    weights = [1.0 / (i + 1) ** s for i in range(n_items)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    cdf[-1] = 1.0  # guard against float drift at the top end
    rng = random.Random(seed)
    return [bisect_left(cdf, rng.random()) for _ in range(n_requests)]


def ensure_distinct_keys(specs: Sequence[ExperimentSpec]) -> None:
    """Raise if any two specs share a :func:`spec_key`.

    The universes below can only mint distinct keys because each variant
    perturbs the work model; a caller concatenating universes (or a
    nudge that stops reaching the key — the original bug was nudged
    models built outside spec construction) would otherwise collapse
    requests into one cache entry and silently inflate the dedupe
    ratio.  Universe builders call this before returning.
    """
    seen: dict[str, str] = {}
    for spec in specs:
        key = spec_key(spec)
        if key in seen:
            raise ValueError(
                f"universe key collision: {spec.name!r} and "
                f"{seen[key]!r} both map to {key[:16]}…"
            )
        seen[key] = spec.name


def default_universe(
    n: int,
    fig: str = "fig1",
    nodes: int = 2,
    sim_steps: int = 1,
    workload: str = "alya",
) -> list[ExperimentSpec]:
    """``n`` distinct-key, equal-cost specs on one figure shape.

    Each variant rebuilds the spec through :func:`build_spec` (so it is
    validated exactly like a real request — never a hand-assembled
    model) and asks the ``workload``'s registry entry for variant ``i``
    via :meth:`~repro.workloads.base.Workload.nudge` — a new
    :func:`~repro.exec.speckey.spec_key` per variant, with a cost
    difference of one part in millions (the simulations stay
    comparable, which is what a balance measurement needs).
    """
    if n < 1:
        raise ValueError("universe size must be >= 1")
    base = build_spec(fig, nodes=nodes, sim_steps=sim_steps,
                      workload=workload)
    wl = get_workload(workload)
    out = []
    for i in range(n):
        out.append(
            dataclasses.replace(
                base,
                name=f"{base.name}-u{i:03d}",
                workmodel=wl.nudge(base.workmodel, i),
            )
        )
    ensure_distinct_keys(out)
    return out


def balanced_universe(
    n: int,
    router: ShardRouter,
    fig: str = "fig1",
    nodes: int = 2,
    sim_steps: int = 1,
    workload: str = "alya",
) -> list[ExperimentSpec]:
    """Like :func:`default_universe`, but the ``n`` variants are chosen
    (deterministically) so the router spreads them as evenly as shard
    arithmetic allows — at most a one-spec difference between shards.

    Throughput benchmarks use this: a scaling measurement should gate on
    serving overhead, not on the luck of one hash draw.  Router balance
    *in general* is the property tests' job, not the benchmark's.
    """
    if n < 1:
        raise ValueError("universe size must be >= 1")
    quota = -(-n // router.n_shards)  # ceil
    counts = [0] * router.n_shards
    out: list[ExperimentSpec] = []
    base = build_spec(fig, nodes=nodes, sim_steps=sim_steps,
                      workload=workload)
    wl = get_workload(workload)
    i = 0
    limit = 1000 * n  # deterministic search, bounded
    while len(out) < n and i < limit:
        spec = dataclasses.replace(
            base,
            name=f"{base.name}-u{i:03d}",
            workmodel=wl.nudge(base.workmodel, i),
        )
        shard = router.shard_for(spec_key(spec))
        if counts[shard] < quota:
            counts[shard] += 1
            out.append(spec)
        i += 1
    if len(out) < n:  # pragma: no cover - would need a pathological ring
        raise RuntimeError("could not balance the universe; ring too skewed")
    ensure_distinct_keys(out)
    return out


@dataclass(frozen=True)
class ZipfianMix:
    """A seeded request mix: the universe plus the drawn sequence."""

    universe: tuple
    sequence: tuple
    s: float
    seed: int

    @classmethod
    def build(
        cls,
        universe: Sequence[ExperimentSpec],
        n_requests: int,
        s: float = 1.1,
        seed: int = 0,
    ) -> "ZipfianMix":
        return cls(
            universe=tuple(universe),
            sequence=tuple(
                zipfian_sequence(len(universe), n_requests, s=s, seed=seed)
            ),
            s=s,
            seed=seed,
        )

    @property
    def n_requests(self) -> int:
        return len(self.sequence)

    def distinct_requested(self) -> int:
        """Unique specs the sequence actually touches (the execution
        floor for a perfectly deduplicating server)."""
        return len(set(self.sequence))

    def specs(self) -> list[ExperimentSpec]:
        return [self.universe[i] for i in self.sequence]


@dataclass(frozen=True)
class ChaosOp:
    """One scheduled fault: ``kind`` (``"kill"`` → SIGKILL the worker,
    ``"wedge"`` → SIGSTOP it) applied to ``shard`` when request
    ``at_request`` of the replay acquires its concurrency slot."""

    kind: str
    shard: int
    at_request: int


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded fault schedule for one replay.

    :meth:`build` picks distinct victim shards and mid-replay trigger
    points (in the middle half of the sequence, so faults land while
    traffic is genuinely in flight) from
    ``random.Random(f"chaos:{seed}:{n_shards}:{n_requests}")`` — the
    same seed plans the same faults on every run, which is what lets
    the chaos gate compare digests against a no-chaos run of the same
    mix.
    """

    ops: tuple
    seed: int = 0

    @classmethod
    def build(
        cls,
        n_shards: int,
        n_requests: int,
        kills: int = 1,
        wedges: int = 0,
        seed: int = 0,
    ) -> "ChaosPlan":
        if kills < 0 or wedges < 0:
            raise ValueError("kills and wedges must be >= 0")
        if kills + wedges > n_shards:
            raise ValueError(
                "at most one fault per shard: "
                f"kills+wedges={kills + wedges} > n_shards={n_shards}"
            )
        if kills + wedges and n_requests < 4:
            raise ValueError("chaos needs a replay of at least 4 requests")
        rng = random.Random(f"chaos:{seed}:{n_shards}:{n_requests}")
        victims = rng.sample(range(n_shards), kills + wedges)
        lo = n_requests // 4
        hi = max(lo + 1, (3 * n_requests) // 4)
        ops = [
            ChaosOp(
                kind="kill" if i < kills else "wedge",
                shard=shard,
                at_request=rng.randrange(lo, hi),
            )
            for i, shard in enumerate(victims)
        ]
        ops.sort(key=lambda op: (op.at_request, op.shard, op.kind))
        return cls(ops=tuple(ops), seed=seed)


def _apply_chaos(target, op: ChaosOp) -> None:
    if op.kind == "kill":
        target.kill_worker(op.shard)
    elif op.kind == "wedge":
        target.wedge_worker(op.shard)
    else:  # pragma: no cover - plan construction guards this
        raise ValueError(f"unknown chaos op kind {op.kind!r}")


@dataclass
class LoadReport:
    """What one replay produced: payloads, latencies, wall-clock."""

    mix: ZipfianMix
    #: Per-request canonical-JSON response payloads ("ERROR:<type>" for
    #: requests that ultimately failed), in sequence order.
    payloads: list = field(default_factory=list)
    latencies: list = field(default_factory=list)
    elapsed_s: float = 0.0
    #: Overloaded rejections that were retried (not errors).
    retries: int = 0
    errors: int = 0
    #: Requests that exhausted the retry ceiling (a subset of errors).
    overload_exhausted: int = 0
    #: The server's last ``retry_after`` hint seen before a request
    #: gave up — what the operator needs to re-tune the ceiling.
    last_retry_after: Optional[float] = None
    #: Chaos ops actually fired during the replay.
    chaos_applied: int = 0


async def run_load(
    target,
    mix: ZipfianMix,
    concurrency: int = 32,
    max_retries: Optional[int] = None,
    chaos: Optional[ChaosPlan] = None,
    retry_cap: float = 1.0,
) -> LoadReport:
    """Replay ``mix`` against ``target`` (anything with an async
    ``submit(spec)``), at most ``concurrency`` requests in flight.

    Requests are *issued* in sequence order; completions interleave
    freely (that is the point of a concurrent replay).  ``Overloaded``
    rejections back off and retry up to ``max_retries`` times after the
    first attempt (:data:`MAX_RETRIES` when ``None``; ``0`` = fail on
    the first rejection).  The backoff starts from the server's
    ``retry_after`` hint but spreads with decorrelated jitter —
    ``min(retry_cap, uniform(hint, 3 × previous_sleep))`` from a
    per-request ``random.Random(f"loadgen-retry:{seed}:{idx}")`` — so
    rejected requests never reconverge into a thundering herd, while a
    fixed mix seed still draws the exact same sleep schedule.

    ``chaos`` schedules worker faults into the replay (cluster targets
    only — the target must expose ``kill_worker`` / ``wedge_worker``);
    each op fires when its trigger request acquires a concurrency slot,
    i.e. genuinely mid-replay.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if max_retries is None:
        max_retries = MAX_RETRIES
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if retry_cap <= 0:
        raise ValueError("retry_cap must be > 0")
    ops_at: dict[int, list[ChaosOp]] = {}
    if chaos is not None and chaos.ops:
        if not (
            hasattr(target, "kill_worker") and hasattr(target, "wedge_worker")
        ):
            raise TypeError(
                "chaos plans need a cluster target with "
                "kill_worker/wedge_worker hooks"
            )
        for op in chaos.ops:
            if op.at_request >= mix.n_requests:
                raise ValueError(
                    f"chaos op at request {op.at_request} beyond the "
                    f"{mix.n_requests}-request sequence"
                )
            ops_at.setdefault(op.at_request, []).append(op)
    report = LoadReport(mix=mix)
    report.payloads = [None] * mix.n_requests
    report.latencies = [None] * mix.n_requests
    gate = asyncio.Semaphore(concurrency)

    async def one(idx: int, spec: ExperimentSpec) -> None:
        async with gate:
            for op in ops_at.pop(idx, ()):
                _apply_chaos(target, op)
                report.chaos_applied += 1
            t0 = time.monotonic()
            rng = None
            prev_sleep = 0.0
            last_hint = None
            for attempt in range(max_retries + 1):
                try:
                    result = await target.submit(spec)
                    report.payloads[idx] = json.dumps(
                        result.to_json_dict(), sort_keys=True
                    )
                    report.latencies[idx] = time.monotonic() - t0
                    return
                except Overloaded as exc:
                    last_hint = exc.retry_after
                    if attempt == max_retries:
                        break  # ceiling hit; no point sleeping again
                    report.retries += 1
                    if rng is None:
                        rng = random.Random(
                            f"loadgen-retry:{mix.seed}:{idx}"
                        )
                    base = max(1e-4, exc.retry_after)
                    prev_sleep = min(
                        retry_cap,
                        rng.uniform(base, max(base, prev_sleep) * 3),
                    )
                    await asyncio.sleep(prev_sleep)
                except Exception as exc:
                    report.payloads[idx] = f"ERROR:{type(exc).__name__}"
                    report.latencies[idx] = time.monotonic() - t0
                    report.errors += 1
                    return
            report.payloads[idx] = "ERROR:Overloaded"
            report.latencies[idx] = time.monotonic() - t0
            report.errors += 1
            report.overload_exhausted += 1
            report.last_retry_after = last_hint

    t0 = time.monotonic()
    await asyncio.gather(
        *(
            one(idx, mix.universe[item])
            for idx, item in enumerate(mix.sequence)
        )
    )
    report.elapsed_s = time.monotonic() - t0
    return report


def scoreboard(
    report: LoadReport,
    executed: int,
    per_shard: Optional[Sequence[int]] = None,
) -> dict:
    """The replay's scoreboard: throughput, dedupe, tail latency,
    balance, and the deterministic digest.

    ``executed`` is the number of simulations the target actually ran
    (executor stats for a service, summed worker stats for a cluster);
    ``per_shard`` is the cluster's request balance, when there is one.
    The ``digest`` covers only seed-determined data — universe keys,
    sequence, response payloads, error count — so it is invariant
    across runs, hash seeds, *and* across single-service vs cluster
    targets when their responses match byte-for-byte, *and* across
    chaos vs calm runs of the same mix.  Execution/dedupe counts are
    reported (and gated by callers that know the run's fault budget)
    but deliberately excluded from the digest: a worker killed in the
    instant between its cache write and its reply legitimately shifts
    ``executed`` by one without changing a single response byte.
    """
    n = report.mix.n_requests
    dedupe = n - executed
    stats = ServeStats(latencies=[x for x in report.latencies if x is not None])
    deterministic = {
        "universe_keys": [spec_key(s) for s in report.mix.universe],
        "zipf_s": report.mix.s,
        "seed": report.mix.seed,
        "sequence": list(report.mix.sequence),
        "responses": [
            hashlib.sha256(p.encode("utf-8")).hexdigest()
            if p is not None
            else "MISSING"
            for p in report.payloads
        ],
        "errors": report.errors,
    }
    digest = hashlib.sha256(
        json.dumps(deterministic, sort_keys=True).encode("utf-8")
    ).hexdigest()
    out = {
        "requests": n,
        "universe": len(report.mix.universe),
        "distinct_requested": report.mix.distinct_requested(),
        "executed": executed,
        "dedupe": dedupe,
        "dedupe_ratio": (dedupe / n) if n else 0.0,
        "errors": report.errors,
        "retries": report.retries,
        "elapsed_s": report.elapsed_s,
        "throughput_rps": (n / report.elapsed_s) if report.elapsed_s else 0.0,
        "latency": stats.latency_summary(),
        "digest": digest,
    }
    if per_shard is not None:
        per_shard = list(per_shard)
        low = min(per_shard) if per_shard else 0
        out["requests_by_shard"] = per_shard
        out["balance_ratio"] = (
            (max(per_shard) / low) if low else float("inf")
        )
    return out
