"""``repro-serve``: run the study service against a request replay.

Starts an in-process :class:`~repro.serve.service.StudyService`, fires
the requests described by a JSON replay script (or a synthetic
``--burst`` of identical requests), drains cleanly, and prints the
serving scoreboard: request/dedupe/reject counters, batch shapes,
p50/p95/p99 latency, and the executor's execution/cache accounting.

Examples
--------
::

    repro-serve --script examples/serve_smoke.json
    repro-serve --burst 64 --fig fig1 --nodes 2        # single-flight demo
    repro-serve --burst 64 --expect-dedupe 63 --expect-max-executed 1
    repro-serve --script replay.json --workers 4 --cache --json out.json

The ``--expect-*`` flags turn the run into a check (exit 1 on
violation) — CI's ``serve-smoke`` job uses them to prove that a burst
of identical requests executes once and that the drain resolves every
admitted request.  See ``docs/serving.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional, Sequence

from repro.core.figures import ascii_table
from repro.exec import ExperimentExecutor
from repro.serve.requests import RequestGroup, build_spec, parse_script
from repro.serve.service import (
    Overloaded,
    RequestFailed,
    ServiceClosed,
    StudyService,
)


async def _replay(
    service: StudyService, groups: "list[RequestGroup]"
) -> dict:
    """Fire every group's requests concurrently; tally the outcomes."""
    tally = {"ok": 0, "rejected": 0, "failed": 0, "closed": 0}

    async def one(spec):
        try:
            await service.submit(spec)
            tally["ok"] += 1
        except Overloaded:
            tally["rejected"] += 1
        except ServiceClosed:
            tally["closed"] += 1
        except RequestFailed:
            tally["failed"] += 1

    async with service:
        tasks = []
        for group in groups:
            if group.delay_ms:
                await asyncio.sleep(group.delay_ms / 1000.0)
            tasks.extend(
                asyncio.ensure_future(one(group.spec))
                for _ in range(group.count)
            )
        await asyncio.gather(*tasks)
    return tally


def _scoreboard(service: StudyService, tally: dict) -> str:
    stats = service.stats
    lat = stats.latency_summary()
    xstats = service.executor.stats
    rows = [
        ["requests", stats.requests],
        ["  ok", tally["ok"]],
        ["  deduped (single-flight)", stats.dedup_hits],
        ["  rejected (backpressure)", stats.rejected],
        ["  failed", tally["failed"]],
        ["batches", stats.batches],
        ["flights executed", stats.flights],
        ["simulations executed", xstats.executed],
        ["cache hits", xstats.hits],
        ["latency p50 [ms]", round(lat["p50"] * 1e3, 3)],
        ["latency p95 [ms]", round(lat["p95"] * 1e3, 3)],
        ["latency p99 [ms]", round(lat["p99"] * 1e3, 3)],
    ]
    return ascii_table(["serve", "value"], rows)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve experiment requests through the single-flight study "
            "service and report dedupe/batch/latency statistics."
        ),
    )
    src = parser.add_argument_group("traffic")
    src.add_argument(
        "--script", metavar="FILE", default=None,
        help="JSON replay script (list of request objects; see "
             "docs/serving.md)",
    )
    src.add_argument(
        "--burst", type=int, default=None, metavar="N",
        help="synthetic traffic: N concurrent identical requests",
    )
    src.add_argument(
        "--fig", choices=["fig1", "fig3"], default="fig1",
        help="figure shape for --burst (default fig1)",
    )
    src.add_argument(
        "--runtime", default=None,
        help="container runtime for --burst (default: per-figure)",
    )
    src.add_argument(
        "--nodes", type=int, default=2, metavar="N",
        help="nodes for --burst (default 2)",
    )
    src.add_argument(
        "--sim-steps", type=int, default=1, metavar="N",
        help="simulated steps per request for --burst (default 1)",
    )
    svc = parser.add_argument_group("service")
    svc.add_argument(
        "--max-pending", type=int, default=64, metavar="N",
        help="admission bound on in-flight unique specs (default 64)",
    )
    svc.add_argument(
        "--batch-window", type=float, default=0.005, metavar="SECONDS",
        help="micro-batch collection window (default 0.005)",
    )
    svc.add_argument(
        "--max-batch", type=int, default=16, metavar="N",
        help="max flights per executor submission (default 16)",
    )
    svc.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="executor worker processes (default 1)",
    )
    svc.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="back the service with the spec-keyed result cache",
    )
    svc.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-cache directory (default .repro-cache)",
    )
    chk = parser.add_argument_group("checks (exit 1 on violation)")
    chk.add_argument(
        "--expect-dedupe", type=int, default=None, metavar="N",
        help="fail unless at least N requests were deduped",
    )
    chk.add_argument(
        "--expect-max-executed", type=int, default=None, metavar="N",
        help="fail if more than N simulations actually executed",
    )
    parser.add_argument(
        "--json", default=None, metavar="FILE",
        help="also dump the scoreboard as JSON to FILE ('-' = stdout)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if (args.script is None) == (args.burst is None):
        print("error: exactly one of --script / --burst is required",
              file=sys.stderr)
        return 2
    if args.burst is not None and args.burst < 1:
        print("error: --burst must be >= 1", file=sys.stderr)
        return 2
    try:
        if args.script is not None:
            groups = parse_script(json.loads(open(args.script).read()))
        else:
            groups = [
                RequestGroup(
                    spec=build_spec(
                        args.fig, args.runtime, args.nodes, args.sim_steps
                    ),
                    count=args.burst,
                )
            ]
    except (OSError, ValueError) as exc:
        print(f"error: bad request script: {exc}", file=sys.stderr)
        return 2

    service = StudyService(
        executor=ExperimentExecutor(
            workers=args.workers,
            cache=args.cache,
            cache_dir=args.cache_dir,
            keep_going=True,
        ),
        max_pending=args.max_pending,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
    )
    tally = asyncio.run(_replay(service, groups))

    total = sum(g.count for g in groups)
    resolved = sum(tally.values())
    drained_clean = resolved == total and service.pending == 0
    print(f"Replayed {total} request(s) in {len(groups)} group(s); "
          f"drain {'clean' if drained_clean else 'INCOMPLETE'}\n")
    print(_scoreboard(service, tally))

    if args.json:
        payload = {
            "tally": tally,
            "serve": service.stats.as_dict(),
            "executor": service.executor.stats.as_dict(),
            "drained_clean": drained_clean,
        }
        blob = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            print(blob, end="")
        else:
            with open(args.json, "w") as fh:
                fh.write(blob)

    ok = drained_clean and tally["failed"] == 0
    if args.expect_dedupe is not None:
        got = service.stats.dedup_hits
        if got < args.expect_dedupe:
            print(f"CHECK FAILED: deduped {got} < expected "
                  f"{args.expect_dedupe}", file=sys.stderr)
            ok = False
    if args.expect_max_executed is not None:
        got = service.executor.stats.executed
        if got > args.expect_max_executed:
            print(f"CHECK FAILED: executed {got} > allowed "
                  f"{args.expect_max_executed}", file=sys.stderr)
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
