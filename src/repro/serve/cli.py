"""``repro-serve``: run the study service or a sharded cluster.

Three traffic modes (exactly one required):

- ``--script FILE`` — JSON replay script (see :mod:`repro.serve.requests`);
- ``--burst N`` — N concurrent identical requests (single-flight demo);
- ``--zipf S`` — a seeded zipfian mix (``--requests``, ``--universe``,
  ``--seed``): the "millions of users" traffic shape, served through the
  deterministic load generator (:mod:`repro.serve.loadgen`) and scored
  with throughput / dedupe ratio / tail latency / digest.

Any mode can target a sharded cluster instead of the in-process
service: ``--shards N`` spawns N worker processes behind the
consistent-hash router (:mod:`repro.serve.cluster`), with per-shard L1
memos and, with ``--cache``, the shared on-disk cache as L2.

Examples
--------
::

    repro-serve --script examples/serve_smoke.json
    repro-serve --burst 64 --expect-dedupe 63 --expect-max-executed 1
    repro-serve --zipf 1.1 --requests 64 --universe 8 --seed 7 --shards 2
    repro-serve --zipf 1.1 --requests 200 --universe 16 --shards 4 \\
        --expect-dedupe 184 --expect-max-executed 16 --json -

The ``--expect-*`` flags turn the run into a check (exit 1 on
violation); ``--expect-dedupe`` counts every avoided execution —
single-flight joins plus L1/L2 hits.  Bad inputs (missing/invalid
script, unwritable ``--json`` path) exit 2 with a one-line message,
never a traceback.  See ``docs/serving.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional, Sequence

from repro.core.figures import ascii_table
from repro.exec import ExperimentExecutor
from repro.serve.cluster import ShardDown, StudyCluster
from repro.serve.loadgen import (
    MAX_RETRIES,
    ZipfianMix,
    default_universe,
    run_load,
    scoreboard,
)
from repro.serve.requests import RequestGroup, build_spec, parse_script
from repro.serve.service import (
    Overloaded,
    RequestFailed,
    ServiceClosed,
    StudyService,
)


async def _replay(service, groups: "list[RequestGroup]") -> dict:
    """Fire every group's requests concurrently; tally the outcomes."""
    tally = {"ok": 0, "rejected": 0, "failed": 0, "closed": 0}

    async def one(spec):
        try:
            await service.submit(spec)
            tally["ok"] += 1
        except Overloaded:
            tally["rejected"] += 1
        except ServiceClosed:
            tally["closed"] += 1
        except (RequestFailed, ShardDown):
            tally["failed"] += 1

    async with service:
        tasks = []
        for group in groups:
            if group.delay_ms:
                await asyncio.sleep(group.delay_ms / 1000.0)
            tasks.extend(
                asyncio.ensure_future(one(group.spec))
                for _ in range(group.count)
            )
        await asyncio.gather(*tasks)
    return tally


def _cache_stats(target) -> "tuple[int, int, int]":
    """(executed, l1_hits, l2_hits) for a service or a drained cluster."""
    if isinstance(target, StudyCluster):
        return (
            target.stats.executed,
            target.stats.l1_hits,
            target.stats.l2_hits,
        )
    xs = target.executor.stats
    return xs.executed, xs.l1_hits, xs.hits


def _scoreboard(target, tally: Optional[dict]) -> str:
    stats = target.stats
    lat = stats.latency_summary()
    executed, l1_hits, l2_hits = _cache_stats(target)
    rows = [
        ["requests", stats.requests],
    ]
    if tally is not None:
        rows.append(["  ok", tally["ok"]])
    rows += [
        ["  deduped (single-flight)", stats.dedup_hits],
        ["  rejected (backpressure)", stats.rejected],
    ]
    if tally is not None:
        rows.append(["  failed", tally["failed"]])
    rows += [
        ["batches", stats.batches],
        ["flights executed", stats.flights],
        ["simulations executed", executed],
        ["L1 hits (in-memory)", l1_hits],
        ["L2 hits (result cache)", l2_hits],
        ["latency p50 [ms]", round(lat["p50"] * 1e3, 3)],
        ["latency p95 [ms]", round(lat["p95"] * 1e3, 3)],
        ["latency p99 [ms]", round(lat["p99"] * 1e3, 3)],
    ]
    if isinstance(target, StudyCluster):
        rows.append(["shards", target.stats.shards])
        rows.append(
            ["requests by shard",
             "/".join(str(n) for n in target.stats.requests_by_shard)]
        )
        ratio = target.stats.balance_ratio()
        rows.append(
            ["shard balance (max/min)",
             "inf" if ratio == float("inf") else round(ratio, 3)]
        )
        if target.self_heal:
            rows += [
                ["shard crashes", target.stats.shard_crashes],
                ["  respawned", target.stats.respawns],
                ["  flights replayed", target.stats.replayed],
                ["  served via fallback", target.stats.fallbacks],
                ["  breaker opens/closes",
                 f"{target.stats.breaker_opens}/"
                 f"{target.stats.breaker_closes}"],
            ]
    return ascii_table(["serve", "value"], rows)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve experiment requests through the single-flight study "
            "service or a sharded cluster, and report dedupe/batch/"
            "latency statistics."
        ),
    )
    src = parser.add_argument_group("traffic (exactly one)")
    src.add_argument(
        "--script", metavar="FILE", default=None,
        help="JSON replay script (list of request objects; see "
             "docs/serving.md)",
    )
    src.add_argument(
        "--burst", type=int, default=None, metavar="N",
        help="synthetic traffic: N concurrent identical requests",
    )
    src.add_argument(
        "--zipf", type=float, default=None, metavar="S",
        help="seeded zipfian mix with exponent S (use with --requests/"
             "--universe/--seed)",
    )
    src.add_argument(
        "--requests", type=int, default=64, metavar="N",
        help="zipf mode: total requests to replay (default 64)",
    )
    src.add_argument(
        "--universe", type=int, default=8, metavar="N",
        help="zipf mode: distinct specs in the universe (default 8)",
    )
    src.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="zipf mode: mix seed (default 0)",
    )
    src.add_argument(
        "--concurrency", type=int, default=32, metavar="N",
        help="zipf mode: max requests in flight (default 32)",
    )
    src.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="zipf mode: Overloaded retries per request before it is "
             "recorded as an error (default: the load generator's "
             "ceiling of 100; 0 = fail on first rejection)",
    )
    src.add_argument(
        "--fig", choices=["fig1", "fig3"], default="fig1",
        help="figure shape for --burst / --zipf (default fig1)",
    )
    src.add_argument(
        "--runtime", default=None,
        help="container runtime for --burst (default: per-figure)",
    )
    src.add_argument(
        "--workload", default="alya", metavar="NAME",
        help="registered workload for --burst / --zipf (default alya; "
             "see repro.workloads)",
    )
    src.add_argument(
        "--nodes", type=int, default=2, metavar="N",
        help="nodes for --burst / --zipf (default 2)",
    )
    src.add_argument(
        "--sim-steps", type=int, default=1, metavar="N",
        help="simulated steps per request for --burst / --zipf "
             "(default 1)",
    )
    svc = parser.add_argument_group("service / cluster")
    svc.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="serve through an N-shard cluster instead of the "
             "in-process service (default 0 = in-process)",
    )
    svc.add_argument(
        "--max-pending", type=int, default=64, metavar="N",
        help="admission bound on in-flight unique specs (per shard "
             "when clustered; default 64)",
    )
    svc.add_argument(
        "--batch-window", type=float, default=0.005, metavar="SECONDS",
        help="micro-batch collection window, in-process service only "
             "(default 0.005)",
    )
    svc.add_argument(
        "--max-batch", type=int, default=16, metavar="N",
        help="max flights per executor submission (default 16)",
    )
    svc.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="executor worker processes (per shard when clustered; "
             "default 1)",
    )
    svc.add_argument(
        "--l1", action=argparse.BooleanOptionalAction, default=None,
        help="in-memory result memo (default: on for --zipf and for "
             "clusters, off otherwise)",
    )
    svc.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="back the service with the spec-keyed result cache "
             "(the shared L2 when clustered)",
    )
    svc.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-cache directory (default .repro-cache)",
    )
    svc.add_argument(
        "--self-heal", action=argparse.BooleanOptionalAction,
        default=True,
        help="cluster only: supervise workers, respawn the dead and "
             "replay their in-flight requests (default on; "
             "--no-self-heal restores fail-fast ShardDown containment)",
    )
    chk = parser.add_argument_group("checks (exit 1 on violation)")
    chk.add_argument(
        "--expect-dedupe", type=int, default=None, metavar="N",
        help="fail unless at least N executions were avoided "
             "(single-flight joins + L1 + L2 hits)",
    )
    chk.add_argument(
        "--expect-max-executed", type=int, default=None, metavar="N",
        help="fail if more than N simulations actually executed",
    )
    parser.add_argument(
        "--json", default=None, metavar="FILE",
        help="also dump the scoreboard as JSON to FILE ('-' = stdout)",
    )
    return parser


def _build_target(args):
    l1 = args.l1
    if l1 is None:
        l1 = args.zipf is not None or args.shards >= 1
    if args.shards >= 1:
        return StudyCluster(
            shards=args.shards,
            workers_per_shard=args.workers,
            cache=args.cache,
            cache_dir=args.cache_dir,
            l1=l1,
            max_pending=args.max_pending,
            max_batch=args.max_batch,
            self_heal=args.self_heal,
        )
    return StudyService(
        executor=ExperimentExecutor(
            workers=args.workers,
            cache=args.cache,
            cache_dir=args.cache_dir,
            l1=l1,
            keep_going=True,
        ),
        max_pending=args.max_pending,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    modes = sum(
        x is not None for x in (args.script, args.burst, args.zipf)
    )
    if modes != 1:
        print(
            "error: exactly one of --script / --burst / --zipf is "
            "required",
            file=sys.stderr,
        )
        return 2
    if args.burst is not None and args.burst < 1:
        print("error: --burst must be >= 1", file=sys.stderr)
        return 2
    if args.shards < 0:
        print("error: --shards must be >= 0", file=sys.stderr)
        return 2
    if args.zipf is not None and (
        args.zipf < 0 or args.requests < 1 or args.universe < 1
        or args.concurrency < 1
    ):
        print(
            "error: --zipf needs S >= 0, --requests/--universe/"
            "--concurrency >= 1",
            file=sys.stderr,
        )
        return 2
    if args.max_retries is not None and args.max_retries < 0:
        print("error: --max-retries must be >= 0", file=sys.stderr)
        return 2

    groups = mix = None
    if args.script is not None:
        try:
            with open(args.script) as fh:
                groups = parse_script(json.load(fh))
        except (OSError, ValueError) as exc:
            # Missing file, directory, permission error, bad JSON, bad
            # dialect: a usage problem, reported on one line — exit 2.
            print(
                f"error: bad request script {args.script!r}: {exc}",
                file=sys.stderr,
            )
            return 2
    elif args.burst is not None:
        try:
            spec = build_spec(
                args.fig, args.runtime, args.nodes, args.sim_steps,
                workload=args.workload,
            )
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        groups = [RequestGroup(spec=spec, count=args.burst)]
    else:
        try:
            universe = default_universe(
                args.universe,
                fig=args.fig,
                nodes=args.nodes,
                sim_steps=args.sim_steps,
                workload=args.workload,
            )
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        mix = ZipfianMix.build(
            universe,
            args.requests,
            s=args.zipf,
            seed=args.seed,
        )

    target = _build_target(args)

    if mix is not None:

        async def zipf_replay():
            async with target:
                return await run_load(
                    target, mix,
                    concurrency=args.concurrency,
                    max_retries=args.max_retries,
                )

        report = asyncio.run(zipf_replay())
        if report.overload_exhausted:
            hint = (
                f"{report.last_retry_after:.3f}s"
                if report.last_retry_after is not None
                else "n/a"
            )
            ceiling = (
                args.max_retries
                if args.max_retries is not None
                else MAX_RETRIES
            )
            print(
                f"error: {report.overload_exhausted} request(s) gave up "
                f"after the retry ceiling ({ceiling} retries); server's "
                f"last retry_after hint was {hint} — raise --max-retries "
                "or lower the offered load",
                file=sys.stderr,
            )
        executed, _, _ = _cache_stats(target)
        board = scoreboard(
            report,
            executed,
            per_shard=(
                target.stats.requests_by_shard
                if isinstance(target, StudyCluster)
                else None
            ),
        )
        print(
            f"Replayed {board['requests']} zipf(s={args.zipf}) "
            f"request(s) over {board['universe']} spec(s), seed "
            f"{args.seed}; errors {board['errors']}\n"
        )
        print(_scoreboard(target, None))
        print(f"\nthroughput {board['throughput_rps']:.1f} req/s, "
              f"dedupe ratio {board['dedupe_ratio']:.3f}, "
              f"digest {board['digest'][:16]}…")
        tally = None
        drained_clean = report.errors == 0
        json_payload = {
            "scoreboard": board,
            "serve": target.stats.as_dict(),
        }
    else:
        tally = asyncio.run(_replay(target, groups))
        total = sum(g.count for g in groups)
        resolved = sum(tally.values())
        drained_clean = resolved == total and target.pending == 0
        print(f"Replayed {total} request(s) in {len(groups)} group(s); "
              f"drain {'clean' if drained_clean else 'INCOMPLETE'}\n")
        print(_scoreboard(target, tally))
        drained_clean = drained_clean and tally["failed"] == 0
        json_payload = {
            "tally": tally,
            "serve": target.stats.as_dict(),
            "drained_clean": drained_clean,
        }
    if not isinstance(target, StudyCluster):
        json_payload["executor"] = target.executor.stats.as_dict()

    if args.json:
        blob = (
            json.dumps(json_payload, indent=2, sort_keys=True) + "\n"
        )
        if args.json == "-":
            print(blob, end="")
        else:
            try:
                with open(args.json, "w") as fh:
                    fh.write(blob)
            except OSError as exc:
                print(
                    f"error: cannot write --json report {args.json!r}: "
                    f"{exc}",
                    file=sys.stderr,
                )
                return 2

    ok = drained_clean
    executed, l1_hits, l2_hits = _cache_stats(target)
    if args.expect_dedupe is not None:
        got = target.stats.dedup_hits + l1_hits + l2_hits
        if got < args.expect_dedupe:
            print(f"CHECK FAILED: deduped {got} < expected "
                  f"{args.expect_dedupe}", file=sys.stderr)
            ok = False
    if args.expect_max_executed is not None:
        if executed > args.expect_max_executed:
            print(f"CHECK FAILED: executed {executed} > allowed "
                  f"{args.expect_max_executed}", file=sys.stderr)
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
