"""Per-shard circuit breaker for the self-healing cluster.

A :class:`CircuitBreaker` tracks one shard's health from the front
end's point of view and answers a single question on every new-key
admission: *ring or fallback?*  It is the standard three-state machine:

``CLOSED``
    The shard is healthy; route to the ring.
``OPEN``
    The shard just died (or is flapping); route new keys to the
    degraded fallback path until ``open_until`` passes.  The backoff
    grows with *decorrelated jitter* — ``sleep = min(cap,
    uniform(base, prev * 3))`` — drawn from a **seeded**
    ``random.Random(f"breaker:{seed}:{shard_id}")``, so a cluster
    replays the same backoff schedule on every run (determinism is a
    repo-wide invariant; see ``docs/serving.md``).
``HALF_OPEN``
    The backoff elapsed; the next new keys are routed to the ring as
    probes.  A successful worker reply closes the breaker, a new
    failure re-opens it with a larger backoff.

The breaker is pure bookkeeping: no clocks of its own (callers pass
``now``), no I/O, no metrics — the cluster translates state changes
into ``serve.shard.breaker_*`` instruments.  Orphan *replays* of
requests that were already admitted bypass the breaker entirely: the
breaker shields *new* traffic, it never drops accepted work.
"""

from __future__ import annotations

import random

#: Breaker states, encoded as the integers the
#: ``serve.shard.breaker_state`` gauge reports.
CLOSED = 0
HALF_OPEN = 1
OPEN = 2

STATE_NAMES = {CLOSED: "closed", HALF_OPEN: "half-open", OPEN: "open"}


class CircuitBreaker:
    """Track one shard's health; decide ring-vs-fallback for new keys.

    Parameters
    ----------
    shard_id:
        The shard this breaker guards (part of the backoff seed, so
        shards never open/close in lockstep).
    seed:
        Cluster-level seed for the decorrelated-jitter draws.
    base_backoff / max_backoff:
        The jitter window: the first open lasts between ``base_backoff``
        and ``3 * base_backoff`` seconds (capped), each re-open draws
        from ``uniform(base, prev * 3)`` capped at ``max_backoff``.
    """

    def __init__(
        self,
        shard_id: int,
        seed: int = 0,
        base_backoff: float = 0.05,
        max_backoff: float = 2.0,
    ) -> None:
        if base_backoff <= 0:
            raise ValueError("base_backoff must be > 0")
        if max_backoff < base_backoff:
            raise ValueError("max_backoff must be >= base_backoff")
        self.shard_id = shard_id
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self._rng = random.Random(f"breaker:{seed}:{shard_id}")
        self.state = CLOSED
        self.failures = 0
        #: Length of the current/most recent open backoff [s].
        self.backoff = 0.0
        #: Monotonic timestamp at which an OPEN breaker half-opens.
        self.open_until = 0.0

    def record_failure(self, now: float) -> None:
        """The shard died (or a probe failed): open with a fresh backoff."""
        self.failures += 1
        prev = self.backoff if self.backoff > 0 else self.base_backoff
        self.backoff = min(
            self.max_backoff, self._rng.uniform(self.base_backoff, prev * 3)
        )
        self.open_until = now + self.backoff
        self.state = OPEN

    def record_success(self) -> None:
        """A worker reply landed: the shard is healthy again."""
        if self.state != CLOSED:
            self.state = CLOSED
            self.backoff = 0.0

    def route(self, now: float) -> str:
        """``"ring"`` or ``"fallback"`` for a *new* key arriving at ``now``.

        An elapsed OPEN transitions to HALF_OPEN as a side effect (the
        caller observes the transition via :attr:`state`).
        """
        if self.state == CLOSED:
            return "ring"
        if self.state == OPEN:
            if now < self.open_until:
                return "fallback"
            self.state = HALF_OPEN
        return "ring"  # HALF_OPEN: probe the ring

    @property
    def state_name(self) -> str:
        return STATE_NAMES[self.state]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CircuitBreaker(shard={self.shard_id}, "
            f"state={self.state_name}, backoff={self.backoff:.3f})"
        )
