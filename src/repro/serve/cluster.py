"""The sharded study cluster: N service workers behind a shard router.

:class:`StudyCluster` scales :class:`~repro.serve.service.StudyService`
past the process boundary.  N *shard workers* — one OS process each,
each owning its own :class:`~repro.exec.executor.ExperimentExecutor`
with an in-memory L1 memo (``l1=True``) and, optionally, the shared
on-disk :class:`~repro.exec.cache.ResultCache` as L2 — sit behind a
:class:`~repro.serve.router.ShardRouter` that consistent-hashes every
request's :func:`~repro.exec.speckey.spec_key`:

- **Global single-flight.** Identical requests always route to the same
  shard, so the per-shard dedupe *is* cluster-wide dedupe: concurrent
  duplicates join the in-flight request at the front end (no second
  message crosses the pipe), later repeats hit the owning worker's L1.
  A spec executes at most once per cluster lifetime, no matter which of
  millions of callers asks, how often, or when.
- **Self-clocking batches.** Each shard has at most one outstanding
  batch; requests arriving while the worker is busy accumulate and are
  flushed (up to ``max_batch``) the moment its previous batch lands.
  Under load the batch size grows automatically — no timer to tune.
- **Bounded admission.** At most ``max_pending`` unique specs may be in
  flight per shard; beyond that, new keys are rejected with
  :class:`~repro.serve.service.Overloaded` exactly like the
  single-process service.
- **Self-healing** (``self_heal=True``, the default).  A supervisor
  task detects dead workers two ways — pipe EOF for a process that
  exited, and missed heartbeats (a ``ping``/``pong`` RPC on the same
  duplex pipe) for a *wedged* process that is alive but unresponsive,
  which is then killed.  Dead workers are respawned with a fresh
  executor (the router never remaps, so every key routes back to the
  original shard id), and the in-flight requests that died with the old
  worker are **replayed** transparently: responses stay byte-identical
  because replayed keys hit the shared L2 cache or re-execute
  deterministically.  While a shard is down or flapping, its per-shard
  circuit breaker (:mod:`repro.serve.breaker`: closed → open →
  half-open with seeded decorrelated-jitter backoff) degrades
  gracefully — new keys for that shard run on a front-end *fallback*
  executor backed by the same L2 — and traffic recovers to the ring
  when the breaker half-opens.  With ``self_heal=False`` the cluster
  keeps the original crash-containment contract: a dying worker fails
  only *its* requests with :class:`ShardDown` and stays down.
- **Deadlines.** ``submit(spec, deadline=seconds)`` bounds one request:
  the remaining budget travels with the batch so the worker cancels a
  queued spec whose budget lapsed before it ran (worker-side
  cancellation), and the waiter gets a typed
  :class:`~repro.serve.service.DeadlineExceeded` either way.

Transport is a duplex :func:`multiprocessing.Pipe` per worker: specs
travel as pickles, results return as the same canonical JSON the result
cache writes — so a response is byte-identical whether it was computed
here, replayed from L1/L2, served by the fallback path, or served by a
single-process :class:`StudyService` (the parity and chaos gates in
``benchmarks/bench_serve_throughput.py`` hold the cluster to that).

Worker-side accounting comes back two ways: exact per-batch execution
deltas piggyback on every ``done`` message (so a worker killed later
never takes already-reported counts with it), and the worker's
``serve.shard.*`` metrics registry is folded into the front end's
:class:`~repro.obs.span.Observability` at drain.  Supervision adds
``serve.shard.respawns`` / ``heartbeat_misses`` / ``replayed`` /
``breaker_opens`` / ``breaker_closes`` counters, the
``serve.shard.breaker_state`` gauge and ``serve.shard.respawn`` /
``serve.shard.breaker`` spans.  See ``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing as mp
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.core.experiment import ExperimentSpec
from repro.core.metrics import ExperimentResult
from repro.exec.executor import ExperimentExecutor
from repro.exec.failures import FailedPoint
from repro.exec.speckey import spec_key
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Observability
from repro.serve import breaker as breaker_mod
from repro.serve.breaker import CircuitBreaker
from repro.serve.router import ShardRouter
from repro.serve.service import (
    DeadlineExceeded,
    Overloaded,
    RequestFailed,
    ServeError,
    ServeStats,
    ServiceClosed,
)


class ShardDown(ServeError):
    """The shard owning this request's key has died (``self_heal=False``
    clusters only — a self-healing cluster replays or degrades instead
    of surfacing this to callers)."""

    def __init__(self, shard: int, detail: str) -> None:
        super().__init__(f"shard {shard} is down: {detail}")
        self.shard = shard


@dataclass
class ShardConfig:
    """Per-worker executor configuration (pickled to the worker)."""

    shard_id: int
    workers: int = 1
    cache: bool = False
    cache_dir: str = ".repro-cache"
    l1: bool = True


@dataclass
class ClusterStats(ServeStats):
    """Front-end accounting plus the per-shard balance view.

    The totals (`requests`, `dedup_hits`, ...) mean the same thing as on
    :class:`~repro.serve.service.ServeStats`; the ``*_by_shard`` lists
    and the worker-side aggregates (``executed`` / ``l1_hits`` /
    ``l2_hits``, accumulated from per-batch deltas as batches land) are
    cluster-specific, and the supervision block (``respawns`` …
    ``deadline_exceeded``) tracks the self-healing machinery.
    """

    shards: int = 0
    #: Requests routed to each shard (dedupe joins included — this is
    #: the traffic balance the router produced).
    requests_by_shard: list = field(default_factory=list)
    #: Unique in-flight specs actually sent to each worker (replayed
    #: flights count once per send).
    flights_by_shard: list = field(default_factory=list)
    #: Simulations executed across all workers + the fallback path.
    executed: int = 0
    #: Worker/fallback L1-memo hits.
    l1_hits: int = 0
    #: Shared on-disk L2 cache hits across workers + fallback.
    l2_hits: int = 0
    shard_crashes: int = 0
    #: Workers respawned by the supervisor.
    respawns: int = 0
    #: In-flight requests orphaned by a death and replayed on the ring.
    replayed: int = 0
    #: Requests served by the front-end fallback executor.
    fallbacks: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    heartbeat_misses: int = 0
    deadline_exceeded: int = 0

    def balance_ratio(self) -> float:
        """max/min requests per shard (``inf`` if a shard saw none)."""
        if not self.requests_by_shard:
            return 1.0
        low = min(self.requests_by_shard)
        if low == 0:
            return float("inf")
        return max(self.requests_by_shard) / low

    def as_dict(self) -> dict:
        out = super().as_dict()
        out.update(
            {
                "shards": self.shards,
                "requests_by_shard": list(self.requests_by_shard),
                "flights_by_shard": list(self.flights_by_shard),
                "executed": self.executed,
                "l1_hits": self.l1_hits,
                "l2_hits": self.l2_hits,
                "shard_crashes": self.shard_crashes,
                "respawns": self.respawns,
                "replayed": self.replayed,
                "fallbacks": self.fallbacks,
                "breaker_opens": self.breaker_opens,
                "breaker_closes": self.breaker_closes,
                "heartbeat_misses": self.heartbeat_misses,
                "deadline_exceeded": self.deadline_exceeded,
                "balance_ratio": self.balance_ratio(),
            }
        )
        return out


# -- the worker process ------------------------------------------------------

def _worker_main(conn, cfg: ShardConfig) -> None:
    """Shard worker: recv batches, run them, send outcomes, repeat.

    Protocol (parent → worker): ``("run", [(seq, spec, remaining), …])``
    where ``remaining`` is the request's leftover deadline budget in
    seconds (or ``None``); ``("ping", token)`` answered with
    ``("pong", token)`` — between batches *and* between execution
    chunks mid-batch, so a busy worker stays visibly alive while a
    wedged (stopped) process, which can answer nothing, does not;
    ``("shutdown",)`` answered with ``("bye", metrics_dump,
    exec_stats)``.  Every ``("done", replies, delta)`` carries the
    batch's exact executor-stat delta so the parent's accounting never
    depends on the worker surviving to say goodbye.  Results travel as
    canonical JSON — the cache's wire format — so the parent
    reconstructs exactly what a local executor would have returned.
    """
    executor = ExperimentExecutor(
        workers=cfg.workers,
        cache=cfg.cache,
        cache_dir=cfg.cache_dir,
        l1=cfg.l1,
        keep_going=True,
    )
    metrics = MetricsRegistry()
    requests_c = metrics.counter("serve.shard.requests")
    batches_c = metrics.counter("serve.shard.batches")
    executed_c = metrics.counter("serve.shard.executed")
    l1_c = metrics.counter("serve.shard.l1_hits")
    l2_c = metrics.counter("serve.shard.l2_hits")
    failures_c = metrics.counter("serve.shard.failures")
    deadline_c = metrics.counter("serve.shard.deadline_cancelled")
    batch_g = metrics.gauge("serve.shard.batch_size")

    def encode(seq, outcome):
        if isinstance(outcome, FailedPoint):
            failures_c.inc()
            return (seq, "failed", outcome)
        blob = json.dumps(outcome.to_json_dict(), sort_keys=True)
        return (seq, "result", blob)

    backlog = deque()

    def answer_pings():
        """Drain queued liveness probes between execution chunks.

        A batch can legitimately run for many heartbeat intervals, so a
        worker that only read the pipe between batches would look
        wedged to the supervisor while merely busy.  Answering pings at
        chunk boundaries bounds unresponsiveness to one chunk's
        runtime — a SIGSTOPped process still answers nothing, which is
        exactly the signal wedge detection needs.  Non-ping messages
        surfaced by the drain keep their order in the backlog.
        """
        while conn.poll(0):
            probe = conn.recv()
            if probe[0] == "ping":
                conn.send(("pong", probe[1]))
            else:
                backlog.append(probe)

    try:
        while True:
            try:
                msg = backlog.popleft() if backlog else conn.recv()
            except (EOFError, OSError):
                return  # parent went away; nothing left to serve
            if msg[0] == "ping":
                conn.send(("pong", msg[1]))
                continue
            if msg[0] == "shutdown":
                conn.send(
                    ("bye", metrics.to_dict(), executor.stats.as_dict())
                )
                return
            if msg[0] != "run":  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {msg[0]!r}")
            batch = msg[1]
            requests_c.inc(len(batch))
            batches_c.inc()
            batch_g.set(len(batch))
            t_recv = time.monotonic()
            before = executor.stats.snapshot()
            replies = []
            # Chunked execution: one executor drive per `workers` specs,
            # answering heartbeats at every boundary.  Deadline budgets
            # are checked per spec, so a budget that lapses while
            # earlier batchmates execute cancels the spec instead of
            # running it.
            step = max(1, cfg.workers)
            for start in range(0, len(batch), step):
                answer_pings()
                chunk = []
                for seq, spec, remaining in batch[start:start + step]:
                    if (
                        remaining is not None
                        and time.monotonic() - t_recv >= remaining
                    ):
                        deadline_c.inc()
                        replies.append((seq, "deadline", None))
                    else:
                        chunk.append((seq, spec))
                if chunk:
                    outcomes = executor.run_many([s for _, s in chunk])
                    for (seq, _), outcome in zip(chunk, outcomes):
                        replies.append(encode(seq, outcome))
            delta = executor.stats.delta(before)
            executed_c.inc(delta["executed"])
            l1_c.inc(delta["l1_hits"])
            l2_c.inc(delta["l2_hits"])
            conn.send(("done", replies, delta))
    except Exception as exc:  # infra failure: tell the parent, then die
        try:
            conn.send(("crash", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):  # pragma: no cover
            pass
        raise


class _ClusterFlight:
    """One unique in-flight spec at the front end."""

    __slots__ = (
        "key", "spec", "seq", "shard", "future", "waiters",
        "deadline", "deadline_s", "replays", "route",
    )

    def __init__(
        self, key, spec, seq, shard, future,
        deadline=None, deadline_s=None,
    ) -> None:
        self.key = key
        self.spec = spec
        self.seq = seq
        self.shard = shard
        self.future = future
        self.waiters = 1
        #: Absolute (monotonic) expiry, or None.  Set by the flight's
        #: *opening* request; joiners enforce their own budget
        #: waiter-side.
        self.deadline = deadline
        self.deadline_s = deadline_s
        #: Times this flight was orphaned by a shard death and replayed.
        self.replays = 0
        #: "ring" (owned by a shard worker) or "fallback" (degraded
        #: front-end execution while the shard's breaker is open).
        self.route = "ring"


class _Shard:
    """Front-end bookkeeping for one worker process."""

    __slots__ = (
        "proc", "conn", "queue", "outstanding", "inflight", "alive",
        "bye", "bye_payload", "reader", "gen", "awaiting_pong",
        "missed", "respawns", "breaker",
    )

    def __init__(self, proc, conn, breaker: CircuitBreaker) -> None:
        self.proc = proc
        self.conn = conn
        self.queue: deque = deque()
        self.outstanding = False
        self.inflight = 0
        self.alive = True
        self.bye = asyncio.Event()
        self.bye_payload = None
        self.reader: Optional[threading.Thread] = None
        #: Process generation.  Bumped on every death so messages (and
        #: the EOF) from a superseded reader thread are discarded
        #: instead of being mistaken for the respawned worker's — the
        #: guard against double-settling a replayed flight.
        self.gen = 0
        self.awaiting_pong = False
        self.missed = 0
        self.respawns = 0
        self.breaker = breaker

    def reset(self, proc, conn) -> None:
        """Point this shard at a freshly respawned worker process."""
        self.proc = proc
        self.conn = conn
        self.outstanding = False
        self.alive = True
        self.bye = asyncio.Event()
        self.bye_payload = None
        self.awaiting_pong = False
        self.missed = 0
        # Orphans already requeued by _shard_died are the new backlog.
        self.inflight = len(self.queue)


class StudyCluster:
    """Serve experiment requests across N shard worker processes.

    The request API mirrors :class:`~repro.serve.service.StudyService`
    (``await submit(spec)`` → :class:`ExperimentResult`, raising
    :class:`Overloaded` / :class:`ServiceClosed` / :class:`RequestFailed`
    / :class:`DeadlineExceeded` plus — with ``self_heal=False`` — the
    cluster-specific :class:`ShardDown`), so load generators, the CLI
    and the parity tests drive either interchangeably.

    Parameters
    ----------
    shards:
        Worker process count (ignored when ``router`` is given).
    router:
        The consistent-hash router; a default
        :class:`~repro.serve.router.ShardRouter` over ``shards`` if
        omitted.
    workers_per_shard:
        Executor processes *inside* each worker (default 1: the worker
        itself is the parallelism unit).
    cache / cache_dir:
        Give every worker (and the fallback path) the shared on-disk
        result cache as L2.  Strongly recommended with ``self_heal``:
        it is what makes replays and degraded-path responses cost a
        cache hit instead of a re-execution.
    l1:
        Per-worker in-memory result memo (default on — it is what makes
        repeats of a served spec cost one dict lookup).
    max_pending:
        Admission bound on unique in-flight specs *per shard* (the
        fallback path is bounded by the same number).
    max_batch:
        Max specs per pipe message / executor submission.
    obs:
        Front-end metrics/span sink; worker-side ``serve.shard.*``
        metrics are folded in at drain.
    self_heal:
        Supervise, respawn and replay (default).  ``False`` restores
        the original contract: crashes surface as :class:`ShardDown`
        and the shard stays down.
    heartbeat_interval / heartbeat_misses:
        Supervisor tick in seconds, and consecutive unanswered ticks
        before a live-but-silent worker is declared wedged and killed.
        The product is the wedge-detection budget — keep it above the
        longest legitimate batch runtime (a worker only answers pings
        between batches).
    max_respawns:
        Per-shard respawn budget (``None`` = unlimited).  A shard past
        its budget serves its keys through the fallback path forever.
    max_flight_replays:
        Times one flight may die with a worker and be replayed on the
        ring before it is routed to the fallback executor instead — the
        guard against a poison spec that kills every worker it meets.
    breaker_seed / breaker_base_backoff / breaker_max_backoff:
        Deterministic decorrelated-jitter backoff of the per-shard
        circuit breakers (:mod:`repro.serve.breaker`).
    """

    def __init__(
        self,
        shards: int = 2,
        router: Optional[ShardRouter] = None,
        workers_per_shard: int = 1,
        cache: bool = False,
        cache_dir: str = ".repro-cache",
        l1: bool = True,
        max_pending: int = 64,
        max_batch: int = 16,
        obs: Optional[Observability] = None,
        self_heal: bool = True,
        heartbeat_interval: float = 0.5,
        heartbeat_misses: int = 6,
        max_respawns: Optional[int] = 8,
        max_flight_replays: int = 2,
        breaker_seed: int = 0,
        breaker_base_backoff: float = 0.05,
        breaker_max_backoff: float = 2.0,
    ) -> None:
        self.router = router or ShardRouter(shards)
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if heartbeat_misses < 1:
            raise ValueError("heartbeat_misses must be >= 1")
        if max_respawns is not None and max_respawns < 0:
            raise ValueError("max_respawns must be >= 0 (or None)")
        if max_flight_replays < 0:
            raise ValueError("max_flight_replays must be >= 0")
        self.workers_per_shard = workers_per_shard
        self.cache = cache
        self.cache_dir = cache_dir
        self.l1 = l1
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.obs = obs or Observability()
        self.self_heal = self_heal
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self.max_respawns = max_respawns
        self.max_flight_replays = max_flight_replays
        self._breaker_cfg = (
            breaker_seed, breaker_base_backoff, breaker_max_backoff
        )
        n = self.router.n_shards
        self.stats = ClusterStats(
            shards=n,
            requests_by_shard=[0] * n,
            flights_by_shard=[0] * n,
        )
        self._shards: list[_Shard] = []
        self._flights: dict[str, _ClusterFlight] = {}
        self._by_seq: dict[int, _ClusterFlight] = {}
        self._seq = itertools.count()
        self._ping_tokens = itertools.count()
        self._ctx = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._idle: Optional[asyncio.Event] = None
        self._supervisor: Optional[asyncio.Task] = None
        self._fallback_exec: Optional[ExperimentExecutor] = None
        self._fallback_lock: Optional[asyncio.Lock] = None
        self._fallback_inflight = 0
        self._started = False
        self._draining = False
        self._closed = False
        self._t0 = time.monotonic()

    # -- lifecycle -----------------------------------------------------------
    async def __aenter__(self) -> "StudyCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()

    @property
    def n_shards(self) -> int:
        return self.router.n_shards

    @property
    def pending(self) -> int:
        """Unique specs currently in flight across all shards."""
        return len(self._flights)

    async def start(self) -> "StudyCluster":
        """Spawn the worker processes, their pipe readers, and — with
        ``self_heal`` — the supervisor task."""
        if self._started:
            return self
        if self._closed:
            raise ServiceClosed("cluster has been drained")
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._fallback_lock = asyncio.Lock()
        # fork is cheap (workers inherit the warm interpreter) and is
        # the Linux default; fall back to spawn where fork is absent.
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        seed, base, cap = self._breaker_cfg
        for shard_id in range(self.n_shards):
            proc, conn = self._spawn_proc(shard_id)
            self._shards.append(
                _Shard(
                    proc, conn,
                    CircuitBreaker(
                        shard_id, seed=seed,
                        base_backoff=base, max_backoff=cap,
                    ),
                )
            )
        # Readers start only after every fork: forking a multi-threaded
        # process is where the dragons live.  (A later *respawn* does
        # fork with readers running — the child execs nothing but
        # _worker_main and touches no parent locks, the same bargain
        # ProcessPoolExecutor makes on POSIX.)
        for shard_id, shard in enumerate(self._shards):
            self._start_reader(shard_id, shard)
        self._started = True
        self.obs.metrics.gauge("serve.cluster.shards").set(self.n_shards)
        if self.self_heal:
            self._supervisor = self._loop.create_task(
                self._supervise(), name="repro-serve-supervisor"
            )
        return self

    def _spawn_proc(self, shard_id: int):
        cfg = ShardConfig(
            shard_id=shard_id,
            workers=self.workers_per_shard,
            cache=self.cache,
            cache_dir=str(self.cache_dir),
            l1=self.l1,
        )
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, cfg),
            daemon=True,
            name=f"repro-serve-shard-{shard_id}",
        )
        proc.start()
        # Parent's copy of the child end must close *before* the next
        # fork, so no sibling holds a stray write end open (that would
        # defeat EOF-based crash detection).
        child_conn.close()
        return proc, parent_conn

    def _start_reader(self, shard_id: int, shard: _Shard) -> None:
        t = threading.Thread(
            target=self._reader,
            args=(shard_id, shard.conn, shard.gen),
            daemon=True,
            name=f"repro-serve-reader-{shard_id}.{shard.gen}",
        )
        shard.reader = t
        t.start()

    async def drain(self) -> None:
        """Complete all in-flight work, then retire every worker.

        Idempotent.  The supervisor keeps running while flights drain —
        a shard dying *mid-drain* is still respawned and its orphans
        replayed, so accepted work is never dropped — and is cancelled
        only once the building is empty.  Collects each worker's
        ``serve.shard.*`` metrics into :attr:`obs` before the processes
        exit; afterwards :meth:`submit` raises :class:`ServiceClosed`.
        """
        if self._closed:
            return
        self._draining = True
        if self._started:
            while self._flights:
                self._idle.clear()
                await self._idle.wait()
            if self._supervisor is not None:
                # All work is settled; stop supervising so a worker
                # dying on the way out is contained, not respawned.
                self._supervisor.cancel()
                try:
                    await self._supervisor
                except asyncio.CancelledError:
                    pass
                self._supervisor = None
            for shard in self._shards:
                if shard.alive:
                    try:
                        shard.conn.send(("shutdown",))
                    except (OSError, ValueError, BrokenPipeError):
                        shard.alive = False
                        shard.bye.set()
            await asyncio.gather(
                *(self._collect_bye(s) for s in self._shards)
            )
            for shard in self._shards:
                await asyncio.get_running_loop().run_in_executor(
                    None, shard.proc.join, 10.0
                )
                if shard.proc.is_alive():  # pragma: no cover
                    shard.proc.terminate()
                try:
                    shard.conn.close()
                except OSError:  # pragma: no cover
                    pass
            self._finalise_stats()
        self._closed = True

    async def _collect_bye(self, shard: _Shard) -> None:
        if not shard.alive:
            return
        try:
            await asyncio.wait_for(shard.bye.wait(), timeout=60.0)
        except asyncio.TimeoutError:  # pragma: no cover
            shard.alive = False
            shard.proc.terminate()

    def _finalise_stats(self) -> None:
        load = self.stats.requests_by_shard
        self.obs.metrics.gauge("serve.cluster.load_max").set(
            max(load) if load else 0
        )
        self.obs.metrics.gauge("serve.cluster.load_min").set(
            min(load) if load else 0
        )
        for shard in self._shards:
            payload = shard.bye_payload
            if payload is None:
                continue
            # Execution counts already accumulated live from the
            # per-batch done-deltas; the bye only contributes the
            # worker's metric registry.
            metrics_dump, _exec_stats = payload
            self.obs.metrics.merge_dict(metrics_dump)

    # -- chaos hooks ---------------------------------------------------------
    def worker_pid(self, shard_id: int) -> Optional[int]:
        """The shard's current worker pid (changes across respawns)."""
        return self._shards[shard_id].proc.pid

    def kill_worker(self, shard_id: int) -> None:
        """Chaos hook: SIGKILL the shard's worker (``kill -9``).

        The supervisor sees the pipe EOF, replays the shard's in-flight
        requests and respawns the worker.  Safe to call on an
        already-dead shard.
        """
        try:
            self._shards[shard_id].proc.kill()
        except (OSError, ValueError, AttributeError):  # pragma: no cover
            pass

    def wedge_worker(self, shard_id: int) -> None:
        """Chaos hook: SIGSTOP the worker — alive but unresponsive.

        A stopped process answers no heartbeats, so after
        ``heartbeat_misses`` supervisor ticks it is declared wedged,
        killed and respawned.  POSIX only.
        """
        if not hasattr(signal, "SIGSTOP"):  # pragma: no cover
            raise RuntimeError("wedge_worker requires POSIX signals")
        try:
            os.kill(self._shards[shard_id].proc.pid, signal.SIGSTOP)
        except (ProcessLookupError, TypeError):  # pragma: no cover
            pass

    # -- the request path ----------------------------------------------------
    async def submit(
        self,
        spec: ExperimentSpec,
        deadline: Optional[float] = None,
    ) -> ExperimentResult:
        """Serve one request through its key's owning shard.

        ``deadline`` is this request's wall-clock budget in seconds.
        The budget rides along to the worker (which cancels the spec if
        it lapses before execution) and bounds this waiter's own wait —
        either way the request raises :class:`DeadlineExceeded`.  A
        joiner's budget never cancels the shared flight: the flight
        carries its *opening* request's deadline, and the result is
        still computed and cached for the other waiters.
        """
        t_start = time.monotonic()
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be > 0 seconds")
        self.stats.requests += 1
        self.obs.metrics.counter("serve.requests").inc()
        if self._draining or self._closed:
            raise ServiceClosed("study cluster is draining; not admitting")
        if not self._started:
            raise RuntimeError(
                "StudyCluster.submit before start(); use 'async with' "
                "or await start() first"
            )
        key = spec_key(spec)
        flight = self._flights.get(key)
        deduped = flight is not None
        if deduped:
            flight.waiters += 1
            self.stats.dedup_hits += 1
            self.obs.metrics.counter("serve.dedup_hits").inc()
        else:
            flight = self._open_flight(key, spec, t_start, deadline)
        self.stats.requests_by_shard[flight.shard] += 1
        try:
            shielded = asyncio.shield(flight.future)
            if deadline is not None:
                budget = (t_start + deadline) - time.monotonic()
                outcome = await asyncio.wait_for(
                    shielded, timeout=max(0.0, budget)
                )
            else:
                outcome = await shielded
        except asyncio.TimeoutError:
            self._count_deadline()
            raise DeadlineExceeded(key, deadline) from None
        except DeadlineExceeded:
            self._count_deadline()
            raise
        except (RequestFailed, ShardDown):
            self.stats.failures += 1
            self.obs.metrics.counter("serve.failures").inc()
            raise
        latency = time.monotonic() - t_start
        self.stats.latencies.append(latency)
        self.obs.metrics.histogram("serve.request_seconds").observe(latency)
        self.obs.add_span(
            "serve.request", "serve",
            t_start - self._t0, t_start - self._t0 + latency,
            track="serve", key=key, deduped=deduped, shard=flight.shard,
        )
        return outcome

    def _open_flight(
        self, key: str, spec: ExperimentSpec,
        t_start: float, deadline: Optional[float],
    ) -> _ClusterFlight:
        """Admit, route (ring or degraded fallback) and launch a new key."""
        shard_id = self.router.shard_for(key)
        shard = self._shards[shard_id]
        route = "ring"
        if not self.self_heal:
            if not shard.alive:
                self.stats.failures += 1
                self.obs.metrics.counter("serve.failures").inc()
                raise ShardDown(shard_id, "worker process has exited")
        elif not shard.alive and not self._respawn_budget_left(shard):
            route = "fallback"  # permanently down; breaker is moot
        else:
            prev = shard.breaker.state
            route = shard.breaker.route(t_start)
            if shard.breaker.state != prev:
                self._breaker_event(shard_id, shard.breaker)
        if route == "ring":
            # A HALF_OPEN probe may target a dead-but-respawnable
            # shard: the flight queues and flushes after the respawn.
            if shard.inflight >= self.max_pending:
                self.stats.rejected += 1
                self.obs.metrics.counter("serve.rejected").inc()
                raise Overloaded(
                    pending=shard.inflight,
                    retry_after=self._retry_after(shard.inflight),
                )
            flight = self._make_flight(
                key, spec, shard_id, t_start, deadline
            )
            self._by_seq[flight.seq] = flight
            shard.inflight += 1
            shard.queue.append(flight)
            self._gauge_depth()
            self._flush(shard_id)
        else:
            if self._fallback_inflight >= self.max_pending:
                self.stats.rejected += 1
                self.obs.metrics.counter("serve.rejected").inc()
                raise Overloaded(
                    pending=self._fallback_inflight,
                    retry_after=self._retry_after(self._fallback_inflight),
                )
            flight = self._make_flight(
                key, spec, shard_id, t_start, deadline
            )
            flight.route = "fallback"
            self._gauge_depth()
            self._start_fallback(flight)
        return flight

    @staticmethod
    def _fail_future(future, exc) -> None:
        """Settle a flight future with an exception, pre-retrieving it:
        a waiter whose own deadline already lapsed has abandoned the
        future, and an unretrieved exception would be logged as a leak
        at garbage collection.  Waiters still awaiting re-raise as
        usual."""
        if not future.done():
            future.set_exception(exc)
            future.exception()

    def _make_flight(self, key, spec, shard_id, t_start, deadline):
        flight = _ClusterFlight(
            key, spec, next(self._seq), shard_id,
            self._loop.create_future(),
            deadline=None if deadline is None else t_start + deadline,
            deadline_s=deadline,
        )
        self._flights[key] = flight
        return flight

    def _count_deadline(self) -> None:
        self.stats.deadline_exceeded += 1
        self.obs.metrics.counter("serve.deadline_exceeded").inc()

    def _retry_after(self, inflight: int) -> float:
        """Backpressure hint: batches the backlog needs, at a nominal
        batch turnaround."""
        backlog_batches = -(-inflight // self.max_batch)
        return 0.01 * max(1, backlog_batches)

    def _gauge_depth(self) -> None:
        self.obs.metrics.gauge("serve.queue_depth").set(len(self._flights))

    def _check_idle(self) -> None:
        if not self._flights and self._idle is not None:
            self._idle.set()

    def _respawn_budget_left(self, shard: _Shard) -> bool:
        return (
            self.max_respawns is None
            or shard.respawns < self.max_respawns
        )

    def _flush(self, shard_id: int) -> None:
        """Send the next batch if the shard's worker is free."""
        shard = self._shards[shard_id]
        if shard.outstanding or not shard.alive or not shard.queue:
            return
        now = time.monotonic()
        batch = []
        while shard.queue and len(batch) < self.max_batch:
            flight = shard.queue.popleft()
            if flight.deadline is not None and now >= flight.deadline:
                # Front-end-side cancellation: the budget lapsed while
                # the flight sat in the shard queue — never send it.
                self._expire(flight, shard)
                continue
            batch.append(flight)
        if not batch:
            self._check_idle()
            return
        shard.outstanding = True
        self.stats.batches += 1
        self.stats.flights += len(batch)
        self.stats.flights_by_shard[shard_id] += len(batch)
        self.obs.metrics.counter("serve.batches").inc()
        self.obs.metrics.gauge("serve.batch_size").set(len(batch))
        wire = [
            (
                f.seq, f.spec,
                None if f.deadline is None else f.deadline - now,
            )
            for f in batch
        ]
        try:
            shard.conn.send(("run", wire))
        except (OSError, ValueError, BrokenPipeError):
            # _shard_died collects the batch's flights from
            # self._flights (they are still registered there) and
            # replays or fails them.
            self._shard_died(shard_id, "pipe write failed")

    def _expire(self, flight: _ClusterFlight, shard: _Shard) -> None:
        self._flights.pop(flight.key, None)
        self._by_seq.pop(flight.seq, None)
        shard.inflight -= 1
        self._fail_future(
            flight.future, DeadlineExceeded(flight.key, flight.deadline_s)
        )

    # -- the degraded fallback path ------------------------------------------
    def _fallback_executor(self) -> ExperimentExecutor:
        if self._fallback_exec is None:
            self._fallback_exec = ExperimentExecutor(
                workers=1,
                cache=self.cache,
                cache_dir=str(self.cache_dir),
                l1=True,
                keep_going=True,
            )
        return self._fallback_exec

    def _start_fallback(self, flight: _ClusterFlight) -> None:
        self.stats.fallbacks += 1
        self.obs.metrics.counter("serve.fallback_requests").inc()
        self._fallback_inflight += 1
        self._loop.create_task(self._run_fallback(flight))

    async def _run_fallback(self, flight: _ClusterFlight) -> None:
        """Serve one flight on the front-end local executor.

        Shares the L2 cache (and key space) with the workers, so a key
        the ring already computed is a cache hit here, and a key
        computed *here* is a cache hit when the ring recovers — the
        degraded path changes latency, never bytes (results take the
        same canonical-JSON round trip as the pipe).
        """
        try:
            if (
                flight.deadline is not None
                and time.monotonic() >= flight.deadline
            ):
                raise DeadlineExceeded(flight.key, flight.deadline_s)
            async with self._fallback_lock:
                ex = self._fallback_executor()
                before = ex.stats.snapshot()
                outcomes = await self._loop.run_in_executor(
                    None, lambda: ex.run_many([flight.spec])
                )
                self._fold_delta(ex.stats.delta(before))
            outcome = outcomes[0]
            if isinstance(outcome, FailedPoint):
                self._fail_future(
                    flight.future,
                    RequestFailed(
                        outcome,
                        f"request {flight.spec.name!r} failed: "
                        f"{outcome.error_type}: {outcome.error}",
                    ),
                )
            elif not flight.future.done():
                blob = json.dumps(
                    outcome.to_json_dict(), sort_keys=True
                )
                flight.future.set_result(
                    ExperimentResult.from_json_dict(json.loads(blob))
                )
        except Exception as exc:
            if not isinstance(exc, ServeError):
                exc = RequestFailed(
                    None,
                    "fallback execution failed: "
                    f"{type(exc).__name__}: {exc}",
                )
            self._fail_future(flight.future, exc)
        finally:
            self._fallback_inflight -= 1
            self._flights.pop(flight.key, None)
            self._gauge_depth()
            self._check_idle()

    def _to_fallback(self, flight: _ClusterFlight) -> None:
        """Re-route an already-admitted (orphaned) flight to the
        fallback executor — replays never drop accepted work."""
        self._by_seq.pop(flight.seq, None)
        flight.route = "fallback"
        self._start_fallback(flight)

    def _fold_delta(self, delta: dict) -> None:
        self.stats.executed += delta["executed"]
        self.stats.l1_hits += delta["l1_hits"]
        self.stats.l2_hits += delta["l2_hits"]

    # -- supervision ---------------------------------------------------------
    async def _supervise(self) -> None:
        """Heartbeat every worker; kill the wedged; respawn the dead.

        Runs until drain cancels it (after the last flight settles, so
        mid-drain deaths are still healed).
        """
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            for shard_id, shard in enumerate(self._shards):
                try:
                    self._tick(shard_id, shard)
                except Exception:  # pragma: no cover - must not die
                    self.obs.metrics.counter(
                        "serve.supervisor_errors"
                    ).inc()

    def _tick(self, shard_id: int, shard: _Shard) -> None:
        if shard.alive:
            if not shard.proc.is_alive():
                # EOF normally beats us to it; belt and braces for a
                # pipe end kept open by an inherited descriptor.
                self._shard_died(shard_id, "worker process exited")
                return
            if shard.awaiting_pong:
                shard.missed += 1
                self.stats.heartbeat_misses += 1
                self.obs.metrics.counter(
                    "serve.shard.heartbeat_misses"
                ).inc()
                if shard.missed >= self.heartbeat_misses:
                    self._kill_shard(
                        shard_id,
                        f"wedged: {shard.missed} heartbeats missed",
                    )
            else:
                try:
                    shard.conn.send(("ping", next(self._ping_tokens)))
                    shard.awaiting_pong = True
                except (OSError, ValueError, BrokenPipeError):
                    self._shard_died(shard_id, "pipe write failed (ping)")
        elif not self._draining or shard.queue:
            if self._respawn_budget_left(shard):
                self._respawn(shard_id, shard)
            elif shard.queue:  # pragma: no cover - defensive
                for flight in list(shard.queue):
                    self._to_fallback(flight)
                shard.queue.clear()
                shard.inflight = 0

    def _kill_shard(self, shard_id: int, detail: str) -> None:
        """Forcibly terminate a wedged worker, then run the death path
        (replay + breaker) exactly as if it had crashed."""
        try:
            self._shards[shard_id].proc.kill()
        except (OSError, ValueError, AttributeError):  # pragma: no cover
            pass
        self._shard_died(shard_id, detail)

    def _respawn(self, shard_id: int, shard: _Shard) -> None:
        try:
            proc, conn = self._spawn_proc(shard_id)
        except OSError:  # pragma: no cover - retry next tick
            return
        shard.reset(proc, conn)
        self._start_reader(shard_id, shard)
        shard.respawns += 1
        self.stats.respawns += 1
        self.obs.metrics.counter("serve.shard.respawns").inc()
        t = time.monotonic() - self._t0
        self.obs.add_span(
            "serve.shard.respawn", "serve", t, t,
            track="serve", shard=shard_id, generation=shard.gen,
        )
        # Replay the orphans _shard_died queued for this shard.
        self._flush(shard_id)

    def _breaker_event(self, shard_id: int, brk: CircuitBreaker) -> None:
        """Record a breaker state *transition* (caller checks it moved)."""
        self.obs.metrics.gauge("serve.shard.breaker_state").set(brk.state)
        t = time.monotonic() - self._t0
        self.obs.add_span(
            "serve.shard.breaker", "serve", t, t,
            track="serve", shard=shard_id, state=brk.state_name,
        )
        if brk.state == breaker_mod.OPEN:
            self.stats.breaker_opens += 1
            self.obs.metrics.counter("serve.shard.breaker_opens").inc()
        elif brk.state == breaker_mod.CLOSED:
            self.stats.breaker_closes += 1
            self.obs.metrics.counter("serve.shard.breaker_closes").inc()

    # -- worker messages (loop thread; scheduled by the readers) -------------
    def _reader(self, shard_id: int, conn, gen: int) -> None:
        """Blocking pipe reader (one daemon thread per worker process).

        Bound to one process *generation*: after a death bumps
        ``shard.gen``, anything this thread still delivers (including
        its EOF) is discarded on the loop thread.
        """
        try:
            while True:
                msg = conn.recv()
                self._loop.call_soon_threadsafe(
                    self._on_message, shard_id, gen, msg
                )
                if msg[0] in ("bye", "crash"):
                    return
        except (EOFError, OSError):
            self._loop.call_soon_threadsafe(self._on_eof, shard_id, gen)

    def _on_message(self, shard_id: int, gen: int, msg) -> None:
        shard = self._shards[shard_id]
        if gen != shard.gen:
            return  # a superseded generation; its flights were replayed
        kind = msg[0]
        if kind == "done":
            replies, delta = msg[1], msg[2]
            self._fold_delta(delta)
            shard.missed = 0
            if self.self_heal and shard.breaker.state != breaker_mod.CLOSED:
                prev = shard.breaker.state
                shard.breaker.record_success()
                if shard.breaker.state != prev:
                    self._breaker_event(shard_id, shard.breaker)
            for seq, outcome_kind, payload in replies:
                flight = self._by_seq.pop(seq, None)
                if flight is None:  # pragma: no cover - protocol guard
                    continue
                if outcome_kind == "failed":
                    point: FailedPoint = payload
                    self._fail_future(
                        flight.future,
                        RequestFailed(
                            point,
                            f"request {flight.spec.name!r} failed: "
                            f"{point.error_type}: {point.error}",
                        ),
                    )
                elif outcome_kind == "deadline":
                    self._fail_future(
                        flight.future,
                        DeadlineExceeded(flight.key, flight.deadline_s),
                    )
                else:
                    result = ExperimentResult.from_json_dict(
                        json.loads(payload)
                    )
                    if not flight.future.done():
                        flight.future.set_result(result)
                self._flights.pop(flight.key, None)
                shard.inflight -= 1
            shard.outstanding = False
            self._gauge_depth()
            self._flush(shard_id)
            self._check_idle()
        elif kind == "pong":
            shard.awaiting_pong = False
            shard.missed = 0
        elif kind == "bye":
            shard.bye_payload = (msg[1], msg[2])
            shard.alive = False
            shard.bye.set()
        elif kind == "crash":
            self._shard_died(shard_id, msg[1])

    def _on_eof(self, shard_id: int, gen: int) -> None:
        shard = self._shards[shard_id]
        if gen != shard.gen:
            return  # EOF of a generation already declared dead
        if shard.bye_payload is not None or not shard.alive:
            return  # clean shutdown (or already handled)
        self._shard_died(shard_id, "worker pipe closed unexpectedly")

    def _shard_died(self, shard_id: int, detail: str) -> None:
        """One shard's worker is gone.  With ``self_heal``: open the
        breaker and queue its orphaned flights for replay (or degrade
        them to the fallback path); without: fail them with
        :class:`ShardDown` and leave the shard down."""
        shard = self._shards[shard_id]
        if not shard.alive:
            return
        shard.alive = False
        # Invalidate the old reader: anything it still delivers is for
        # a flight we are about to replay — processing it would settle
        # the flight twice (once now, once after the replay executes).
        shard.gen += 1
        shard.awaiting_pong = False
        shard.missed = 0
        shard.outstanding = False
        shard.bye.set()  # a drain waiting on this shard must not hang
        self.stats.shard_crashes += 1
        self.obs.metrics.counter("serve.shard_crashes").inc()
        affected = sorted(
            (
                f for f in self._flights.values()
                if f.shard == shard_id and f.route == "ring"
            ),
            key=lambda f: f.seq,
        )
        shard.queue.clear()
        if not self.self_heal:
            for flight in affected:
                self._fail_future(
                    flight.future, ShardDown(shard_id, detail)
                )
                self._flights.pop(flight.key, None)
                self._by_seq.pop(flight.seq, None)
            shard.inflight = 0
        else:
            prev = shard.breaker.state
            shard.breaker.record_failure(time.monotonic())
            if shard.breaker.state != prev:
                self._breaker_event(shard_id, shard.breaker)
            respawnable = self._respawn_budget_left(shard)
            requeued = 0
            for flight in affected:
                flight.replays += 1
                if (
                    not respawnable
                    or flight.replays > self.max_flight_replays
                ):
                    # A flight that keeps dying with workers may be a
                    # poison spec — isolate it on the fallback path
                    # instead of taking another worker down.
                    self._to_fallback(flight)
                else:
                    shard.queue.append(flight)
                    requeued += 1
            shard.inflight = len(shard.queue)
            if requeued:
                self.stats.replayed += requeued
                self.obs.metrics.counter("serve.shard.replayed").inc(
                    requeued
                )
        self._gauge_depth()
        self._check_idle()
