"""The sharded study cluster: N service workers behind a shard router.

:class:`StudyCluster` scales :class:`~repro.serve.service.StudyService`
past the process boundary.  N *shard workers* — one OS process each,
each owning its own :class:`~repro.exec.executor.ExperimentExecutor`
with an in-memory L1 memo (``l1=True``) and, optionally, the shared
on-disk :class:`~repro.exec.cache.ResultCache` as L2 — sit behind a
:class:`~repro.serve.router.ShardRouter` that consistent-hashes every
request's :func:`~repro.exec.speckey.spec_key`:

- **Global single-flight.** Identical requests always route to the same
  shard, so the per-shard dedupe *is* cluster-wide dedupe: concurrent
  duplicates join the in-flight request at the front end (no second
  message crosses the pipe), later repeats hit the owning worker's L1.
  A spec executes at most once per cluster lifetime, no matter which of
  millions of callers asks, how often, or when.
- **Self-clocking batches.** Each shard has at most one outstanding
  batch; requests arriving while the worker is busy accumulate and are
  flushed (up to ``max_batch``) the moment its previous batch lands.
  Under load the batch size grows automatically — no timer to tune.
- **Bounded admission.** At most ``max_pending`` unique specs may be in
  flight per shard; beyond that, new keys are rejected with
  :class:`~repro.serve.service.Overloaded` exactly like the
  single-process service.
- **Crash containment.** A dying worker fails only the requests routed
  to it (:class:`ShardDown`); the other shards keep serving, and
  :meth:`drain` still completes cleanly.

Transport is a duplex :func:`multiprocessing.Pipe` per worker: specs
travel as pickles, results return as the same canonical JSON the result
cache writes — so a response is byte-identical whether it was computed
here, replayed from L1/L2, or served by a single-process
:class:`StudyService` (the parity gate in
``benchmarks/bench_serve_throughput.py`` holds the cluster to that).

Worker-side accounting comes back as ``serve.shard.*`` counters/gauges
(one :class:`~repro.obs.metrics.MetricsRegistry` dump per worker,
folded into the front end's :class:`~repro.obs.span.Observability` at
drain), next to the front end's own ``serve.*`` metrics — one report
for the whole cluster.  See ``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing as mp
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.core.experiment import ExperimentSpec
from repro.core.metrics import ExperimentResult
from repro.exec.executor import ExperimentExecutor
from repro.exec.failures import FailedPoint
from repro.exec.speckey import spec_key
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Observability
from repro.serve.router import ShardRouter
from repro.serve.service import (
    Overloaded,
    RequestFailed,
    ServeError,
    ServeStats,
    ServiceClosed,
)


class ShardDown(ServeError):
    """The shard owning this request's key has died."""

    def __init__(self, shard: int, detail: str) -> None:
        super().__init__(f"shard {shard} is down: {detail}")
        self.shard = shard


@dataclass
class ShardConfig:
    """Per-worker executor configuration (pickled to the worker)."""

    shard_id: int
    workers: int = 1
    cache: bool = False
    cache_dir: str = ".repro-cache"
    l1: bool = True


@dataclass
class ClusterStats(ServeStats):
    """Front-end accounting plus the per-shard balance view.

    The totals (`requests`, `dedup_hits`, ...) mean the same thing as on
    :class:`~repro.serve.service.ServeStats`; the ``*_by_shard`` lists
    and the worker-side aggregates (``executed`` / ``l1_hits`` /
    ``l2_hits``, collected at drain) are cluster-specific.
    """

    shards: int = 0
    #: Requests routed to each shard (dedupe joins included — this is
    #: the traffic balance the router produced).
    requests_by_shard: list = field(default_factory=list)
    #: Unique in-flight specs actually sent to each worker.
    flights_by_shard: list = field(default_factory=list)
    #: Simulations executed across all workers (filled at drain).
    executed: int = 0
    #: Worker L1-memo hits across all workers (filled at drain).
    l1_hits: int = 0
    #: Shared on-disk L2 cache hits across all workers (filled at drain).
    l2_hits: int = 0
    shard_crashes: int = 0

    def balance_ratio(self) -> float:
        """max/min requests per shard (``inf`` if a shard saw none)."""
        if not self.requests_by_shard:
            return 1.0
        low = min(self.requests_by_shard)
        if low == 0:
            return float("inf")
        return max(self.requests_by_shard) / low

    def as_dict(self) -> dict:
        out = super().as_dict()
        out.update(
            {
                "shards": self.shards,
                "requests_by_shard": list(self.requests_by_shard),
                "flights_by_shard": list(self.flights_by_shard),
                "executed": self.executed,
                "l1_hits": self.l1_hits,
                "l2_hits": self.l2_hits,
                "shard_crashes": self.shard_crashes,
                "balance_ratio": self.balance_ratio(),
            }
        )
        return out


# -- the worker process ------------------------------------------------------

def _worker_main(conn, cfg: ShardConfig) -> None:
    """Shard worker: recv batches, run them, send outcomes, repeat.

    Runs until a ``("shutdown",)`` message (answered with a ``("bye",
    ...)`` carrying the worker's metrics dump and executor stats) or
    until the pipe closes under it (parent died — just exit).  Results
    travel as canonical JSON — the cache's wire format — so the parent
    reconstructs exactly what a local executor would have returned.
    """
    executor = ExperimentExecutor(
        workers=cfg.workers,
        cache=cfg.cache,
        cache_dir=cfg.cache_dir,
        l1=cfg.l1,
        keep_going=True,
    )
    metrics = MetricsRegistry()
    requests_c = metrics.counter("serve.shard.requests")
    batches_c = metrics.counter("serve.shard.batches")
    executed_c = metrics.counter("serve.shard.executed")
    l1_c = metrics.counter("serve.shard.l1_hits")
    l2_c = metrics.counter("serve.shard.l2_hits")
    failures_c = metrics.counter("serve.shard.failures")
    batch_g = metrics.gauge("serve.shard.batch_size")
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return  # parent went away; nothing left to serve
            if msg[0] == "shutdown":
                conn.send(
                    ("bye", metrics.to_dict(), executor.stats.as_dict())
                )
                return
            if msg[0] != "run":  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {msg[0]!r}")
            batch = msg[1]
            requests_c.inc(len(batch))
            batches_c.inc()
            batch_g.set(len(batch))
            before = (
                executor.stats.executed,
                executor.stats.l1_hits,
                executor.stats.hits,
            )
            outcomes = executor.run_many([spec for _, spec in batch])
            executed_c.inc(executor.stats.executed - before[0])
            l1_c.inc(executor.stats.l1_hits - before[1])
            l2_c.inc(executor.stats.hits - before[2])
            replies = []
            for (seq, _), outcome in zip(batch, outcomes):
                if isinstance(outcome, FailedPoint):
                    failures_c.inc()
                    replies.append((seq, "failed", outcome))
                else:
                    blob = json.dumps(
                        outcome.to_json_dict(), sort_keys=True
                    )
                    replies.append((seq, "result", blob))
            conn.send(("done", replies))
    except Exception as exc:  # infra failure: tell the parent, then die
        try:
            conn.send(("crash", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):  # pragma: no cover
            pass
        raise


class _ClusterFlight:
    """One unique in-flight spec at the front end."""

    __slots__ = ("key", "spec", "seq", "shard", "future", "waiters")

    def __init__(self, key, spec, seq, shard, future) -> None:
        self.key = key
        self.spec = spec
        self.seq = seq
        self.shard = shard
        self.future = future
        self.waiters = 1


class _Shard:
    """Front-end bookkeeping for one worker process."""

    __slots__ = (
        "proc", "conn", "queue", "outstanding", "inflight", "alive",
        "bye", "bye_payload", "reader",
    )

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.queue: deque = deque()
        self.outstanding = False
        self.inflight = 0
        self.alive = True
        self.bye = asyncio.Event()
        self.bye_payload = None
        self.reader: Optional[threading.Thread] = None


class StudyCluster:
    """Serve experiment requests across N shard worker processes.

    The request API mirrors :class:`~repro.serve.service.StudyService`
    (``await submit(spec)`` → :class:`ExperimentResult`, raising
    :class:`Overloaded` / :class:`ServiceClosed` / :class:`RequestFailed`
    plus the cluster-specific :class:`ShardDown`), so load generators,
    the CLI and the parity tests drive either interchangeably.

    Parameters
    ----------
    shards:
        Worker process count (ignored when ``router`` is given).
    router:
        The consistent-hash router; a default
        :class:`~repro.serve.router.ShardRouter` over ``shards`` if
        omitted.
    workers_per_shard:
        Executor processes *inside* each worker (default 1: the worker
        itself is the parallelism unit).
    cache / cache_dir:
        Give every worker the shared on-disk result cache as L2.
    l1:
        Per-worker in-memory result memo (default on — it is what makes
        repeats of a served spec cost one dict lookup).
    max_pending:
        Admission bound on unique in-flight specs *per shard*.
    max_batch:
        Max specs per pipe message / executor submission.
    obs:
        Front-end metrics/span sink; worker-side ``serve.shard.*``
        metrics are folded in at drain.
    """

    def __init__(
        self,
        shards: int = 2,
        router: Optional[ShardRouter] = None,
        workers_per_shard: int = 1,
        cache: bool = False,
        cache_dir: str = ".repro-cache",
        l1: bool = True,
        max_pending: int = 64,
        max_batch: int = 16,
        obs: Optional[Observability] = None,
    ) -> None:
        self.router = router or ShardRouter(shards)
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.workers_per_shard = workers_per_shard
        self.cache = cache
        self.cache_dir = cache_dir
        self.l1 = l1
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.obs = obs or Observability()
        n = self.router.n_shards
        self.stats = ClusterStats(
            shards=n,
            requests_by_shard=[0] * n,
            flights_by_shard=[0] * n,
        )
        self._shards: list[_Shard] = []
        self._flights: dict[str, _ClusterFlight] = {}
        self._by_seq: dict[int, _ClusterFlight] = {}
        self._seq = itertools.count()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._idle: Optional[asyncio.Event] = None
        self._started = False
        self._draining = False
        self._closed = False
        self._t0 = time.monotonic()

    # -- lifecycle -----------------------------------------------------------
    async def __aenter__(self) -> "StudyCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()

    @property
    def n_shards(self) -> int:
        return self.router.n_shards

    @property
    def pending(self) -> int:
        """Unique specs currently in flight across all shards."""
        return len(self._flights)

    async def start(self) -> "StudyCluster":
        """Spawn the worker processes and their pipe readers."""
        if self._started:
            return self
        if self._closed:
            raise ServiceClosed("cluster has been drained")
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        # fork is cheap (workers inherit the warm interpreter) and is
        # the Linux default; fall back to spawn where fork is absent.
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        for shard_id in range(self.n_shards):
            cfg = ShardConfig(
                shard_id=shard_id,
                workers=self.workers_per_shard,
                cache=self.cache,
                cache_dir=str(self.cache_dir),
                l1=self.l1,
            )
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, cfg),
                daemon=True,
                name=f"repro-serve-shard-{shard_id}",
            )
            proc.start()
            # Parent's copy of the child end must close *before* the
            # next fork, so no sibling holds a stray write end open
            # (that would defeat EOF-based crash detection).
            child_conn.close()
            self._shards.append(_Shard(proc, parent_conn))
        # Readers start only after every fork: forking a multi-threaded
        # process is where the dragons live.
        for shard_id, shard in enumerate(self._shards):
            t = threading.Thread(
                target=self._reader,
                args=(shard_id, shard),
                daemon=True,
                name=f"repro-serve-reader-{shard_id}",
            )
            shard.reader = t
            t.start()
        self._started = True
        self.obs.metrics.gauge("serve.cluster.shards").set(self.n_shards)
        return self

    async def drain(self) -> None:
        """Complete all in-flight work, then retire every worker.

        Idempotent.  Collects each worker's ``serve.shard.*`` metrics
        and executor stats into :attr:`obs` / :attr:`stats` before the
        processes exit; afterwards :meth:`submit` raises
        :class:`ServiceClosed`.
        """
        if self._closed:
            return
        self._draining = True
        if self._started:
            while self._flights:
                self._idle.clear()
                await self._idle.wait()
            for shard in self._shards:
                if shard.alive:
                    try:
                        shard.conn.send(("shutdown",))
                    except (OSError, ValueError, BrokenPipeError):
                        shard.alive = False
            await asyncio.gather(
                *(self._collect_bye(s) for s in self._shards)
            )
            for shard in self._shards:
                await asyncio.get_running_loop().run_in_executor(
                    None, shard.proc.join, 10.0
                )
                if shard.proc.is_alive():  # pragma: no cover
                    shard.proc.terminate()
                try:
                    shard.conn.close()
                except OSError:  # pragma: no cover
                    pass
            self._finalise_stats()
        self._closed = True

    async def _collect_bye(self, shard: _Shard) -> None:
        if not shard.alive:
            return
        try:
            await asyncio.wait_for(shard.bye.wait(), timeout=60.0)
        except asyncio.TimeoutError:  # pragma: no cover
            shard.alive = False
            shard.proc.terminate()

    def _finalise_stats(self) -> None:
        load = self.stats.requests_by_shard
        self.obs.metrics.gauge("serve.cluster.load_max").set(
            max(load) if load else 0
        )
        self.obs.metrics.gauge("serve.cluster.load_min").set(
            min(load) if load else 0
        )
        for shard in self._shards:
            payload = shard.bye_payload
            if payload is None:
                continue
            metrics_dump, exec_stats = payload
            self.obs.metrics.merge_dict(metrics_dump)
            self.stats.executed += exec_stats["executed"]
            self.stats.l1_hits += exec_stats["l1_hits"]
            self.stats.l2_hits += exec_stats["hits"]

    # -- the request path ----------------------------------------------------
    async def submit(self, spec: ExperimentSpec) -> ExperimentResult:
        """Serve one request through its key's owning shard."""
        t_start = time.monotonic()
        self.stats.requests += 1
        self.obs.metrics.counter("serve.requests").inc()
        if self._draining or self._closed:
            raise ServiceClosed("study cluster is draining; not admitting")
        if not self._started:
            raise RuntimeError(
                "StudyCluster.submit before start(); use 'async with' "
                "or await start() first"
            )
        key = spec_key(spec)
        flight = self._flights.get(key)
        deduped = flight is not None
        if deduped:
            flight.waiters += 1
            self.stats.dedup_hits += 1
            self.obs.metrics.counter("serve.dedup_hits").inc()
        else:
            shard_id = self.router.shard_for(key)
            shard = self._shards[shard_id]
            if not shard.alive:
                self.stats.failures += 1
                self.obs.metrics.counter("serve.failures").inc()
                raise ShardDown(shard_id, "worker process has exited")
            if shard.inflight >= self.max_pending:
                self.stats.rejected += 1
                self.obs.metrics.counter("serve.rejected").inc()
                raise Overloaded(
                    pending=shard.inflight,
                    retry_after=self._retry_after(shard),
                )
            flight = _ClusterFlight(
                key, spec, next(self._seq), shard_id,
                asyncio.get_running_loop().create_future(),
            )
            self._flights[key] = flight
            self._by_seq[flight.seq] = flight
            shard.inflight += 1
            shard.queue.append(flight)
            self._gauge_depth()
            self._flush(shard_id)
        self.stats.requests_by_shard[flight.shard] += 1
        try:
            outcome = await asyncio.shield(flight.future)
        except (RequestFailed, ShardDown):
            self.stats.failures += 1
            self.obs.metrics.counter("serve.failures").inc()
            raise
        latency = time.monotonic() - t_start
        self.stats.latencies.append(latency)
        self.obs.metrics.histogram("serve.request_seconds").observe(latency)
        self.obs.add_span(
            "serve.request", "serve",
            t_start - self._t0, t_start - self._t0 + latency,
            track="serve", key=key, deduped=deduped, shard=flight.shard,
        )
        return outcome

    def _retry_after(self, shard: _Shard) -> float:
        """Backpressure hint: batches the shard's backlog needs, at a
        nominal batch turnaround."""
        backlog_batches = -(-shard.inflight // self.max_batch)
        return 0.01 * max(1, backlog_batches)

    def _gauge_depth(self) -> None:
        self.obs.metrics.gauge("serve.queue_depth").set(len(self._flights))

    def _flush(self, shard_id: int) -> None:
        """Send the next batch if the shard's worker is free."""
        shard = self._shards[shard_id]
        if shard.outstanding or not shard.alive or not shard.queue:
            return
        batch = [
            shard.queue.popleft()
            for _ in range(min(self.max_batch, len(shard.queue)))
        ]
        shard.outstanding = True
        self.stats.batches += 1
        self.stats.flights += len(batch)
        self.stats.flights_by_shard[shard_id] += len(batch)
        self.obs.metrics.counter("serve.batches").inc()
        self.obs.metrics.gauge("serve.batch_size").set(len(batch))
        try:
            shard.conn.send(("run", [(f.seq, f.spec) for f in batch]))
        except (OSError, ValueError, BrokenPipeError):
            self._shard_died(shard_id, "pipe write failed")

    # -- worker messages (loop thread; scheduled by the readers) -------------
    def _reader(self, shard_id: int, shard: _Shard) -> None:
        """Blocking pipe reader (one daemon thread per worker)."""
        try:
            while True:
                msg = shard.conn.recv()
                self._loop.call_soon_threadsafe(
                    self._on_message, shard_id, msg
                )
                if msg[0] in ("bye", "crash"):
                    return
        except (EOFError, OSError):
            self._loop.call_soon_threadsafe(self._on_eof, shard_id)

    def _on_message(self, shard_id: int, msg) -> None:
        shard = self._shards[shard_id]
        kind = msg[0]
        if kind == "done":
            for seq, outcome_kind, payload in msg[1]:
                flight = self._by_seq.pop(seq, None)
                if flight is None:  # pragma: no cover - protocol guard
                    continue
                if outcome_kind == "failed":
                    point: FailedPoint = payload
                    if not flight.future.done():
                        flight.future.set_exception(
                            RequestFailed(
                                point,
                                f"request {flight.spec.name!r} failed: "
                                f"{point.error_type}: {point.error}",
                            )
                        )
                else:
                    result = ExperimentResult.from_json_dict(
                        json.loads(payload)
                    )
                    if not flight.future.done():
                        flight.future.set_result(result)
                self._flights.pop(flight.key, None)
                shard.inflight -= 1
            shard.outstanding = False
            self._gauge_depth()
            self._flush(shard_id)
            if not self._flights and self._idle is not None:
                self._idle.set()
        elif kind == "bye":
            shard.bye_payload = (msg[1], msg[2])
            shard.alive = False
            shard.bye.set()
        elif kind == "crash":
            self._shard_died(shard_id, msg[1])

    def _on_eof(self, shard_id: int) -> None:
        shard = self._shards[shard_id]
        if shard.bye_payload is not None or not shard.alive:
            return  # clean shutdown (or already handled)
        self._shard_died(shard_id, "worker pipe closed unexpectedly")

    def _shard_died(self, shard_id: int, detail: str) -> None:
        """Fail everything routed to a dead shard; keep the rest alive."""
        shard = self._shards[shard_id]
        if not shard.alive:
            return
        shard.alive = False
        shard.bye.set()  # a drain waiting on this shard must not hang
        self.stats.shard_crashes += 1
        self.obs.metrics.counter("serve.shard_crashes").inc()
        dead = [f for f in self._flights.values() if f.shard == shard_id]
        for flight in dead:
            if not flight.future.done():
                flight.future.set_exception(ShardDown(shard_id, detail))
            self._flights.pop(flight.key, None)
            self._by_seq.pop(flight.seq, None)
        shard.queue.clear()
        shard.inflight = 0
        shard.outstanding = False
        self._gauge_depth()
        if not self._flights and self._idle is not None:
            self._idle.set()
