"""Request shapes for the serving layer.

The in-process API (:meth:`~repro.serve.service.StudyService.submit`)
takes full :class:`~repro.core.experiment.ExperimentSpec` objects; the
``repro-serve`` CLI and the throughput benchmark speak a small JSON
dialect instead — one dict per request group, naming a paper figure
shape plus the knobs that matter for traffic replay::

    {"fig": "fig1", "runtime": "docker",      "nodes": 2, "count": 32}
    {"fig": "fig3", "runtime": "singularity", "nodes": 8, "count": 4,
     "sim_steps": 1, "delay_ms": 10}
    {"fig": "fig1", "workload": "stencil",    "nodes": 2, "count": 8}

``fig`` picks the cluster/geometry template (Lenox-sized for ``fig1``,
MareNostrum4-sized for ``fig3`` — the same shapes ``repro-study trace``
drives); ``workload`` picks the registered application model whose
:meth:`~repro.workloads.base.Workload.default_workmodel` fills the case
(default ``alya``); ``count`` replays the request that many times
concurrently; ``delay_ms`` sleeps before the group is fired, to shape
bursts.  Unknown keys are rejected so a typo cannot silently change a
replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.containers.recipes import BuildTechnique
from repro.core.experiment import EndpointGranularity, ExperimentSpec
from repro.hardware import catalog
from repro.workloads import get_workload

#: Request-dialect keys the replay scripts may use.
_ALLOWED_KEYS = {
    "fig", "runtime", "nodes", "sim_steps", "count", "delay_ms", "workload",
}

_DEFAULT_RUNTIME = {"fig1": "docker", "fig3": "singularity"}


@dataclass(frozen=True)
class RequestGroup:
    """One line of a replay script: a spec plus traffic shaping."""

    spec: ExperimentSpec
    count: int = 1
    delay_ms: float = 0.0


def build_spec(
    fig: str,
    runtime: Optional[str] = None,
    nodes: int = 2,
    sim_steps: int = 1,
    workload: str = "alya",
) -> ExperimentSpec:
    """An :class:`ExperimentSpec` for one of the paper's figure shapes.

    The work model comes from the ``workload``'s registry entry — every
    serve spec goes through the same
    :meth:`~repro.workloads.base.Workload.default_workmodel` path, so a
    request can never pair a workload with a foreign work model.  Alya
    spec names keep their historical ``serve-{fig}-{runtime}-n{nodes}``
    form (the trace/scoreboard fixtures encode them); other workloads
    tag the name with the workload.
    """
    if fig not in ("fig1", "fig3"):
        raise ValueError(f"unknown figure shape {fig!r} (fig1|fig3)")
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    if sim_steps < 1:
        raise ValueError("sim_steps must be >= 1")
    runtime = runtime or _DEFAULT_RUNTIME[fig]
    workmodel = get_workload(workload).default_workmodel(fig)
    tag = "" if workload == "alya" else f"{workload}-"
    if fig == "fig1":
        return ExperimentSpec(
            name=f"serve-fig1-{tag}{runtime}-n{nodes}",
            cluster=catalog.LENOX,
            runtime_name=runtime,
            technique=(
                None if runtime == "bare-metal"
                else BuildTechnique.SELF_CONTAINED
            ),
            workmodel=workmodel,
            n_nodes=nodes,
            ranks_per_node=7,
            threads_per_rank=4,
            sim_steps=sim_steps,
            granularity=EndpointGranularity.RANK,
            workload=workload,
        )
    return ExperimentSpec(
        name=f"serve-fig3-{tag}{runtime}-n{nodes}",
        cluster=catalog.MARENOSTRUM4,
        runtime_name=runtime,
        technique=(
            None if runtime == "bare-metal"
            else BuildTechnique.SYSTEM_SPECIFIC
        ),
        workmodel=workmodel,
        n_nodes=nodes,
        ranks_per_node=catalog.MARENOSTRUM4.node.cores,
        threads_per_rank=1,
        sim_steps=sim_steps,
        granularity=EndpointGranularity.NODE,
        workload=workload,
    )


def parse_request(payload: dict) -> RequestGroup:
    """One script line -> :class:`RequestGroup` (strict about keys)."""
    if not isinstance(payload, dict):
        raise ValueError(f"request must be an object, got {payload!r}")
    unknown = set(payload) - _ALLOWED_KEYS
    if unknown:
        raise ValueError(
            f"unknown request key(s) {sorted(unknown)}; "
            f"allowed: {sorted(_ALLOWED_KEYS)}"
        )
    count = int(payload.get("count", 1))
    if count < 1:
        raise ValueError("count must be >= 1")
    delay_ms = float(payload.get("delay_ms", 0.0))
    if delay_ms < 0:
        raise ValueError("delay_ms must be >= 0")
    spec = build_spec(
        fig=payload.get("fig", "fig1"),
        runtime=payload.get("runtime"),
        nodes=int(payload.get("nodes", 2)),
        sim_steps=int(payload.get("sim_steps", 1)),
        workload=str(payload.get("workload", "alya")),
    )
    return RequestGroup(spec=spec, count=count, delay_ms=delay_ms)


def parse_script(payload) -> list[RequestGroup]:
    """A whole replay script (JSON list of request objects)."""
    if not isinstance(payload, list) or not payload:
        raise ValueError("replay script must be a non-empty JSON list")
    return [parse_request(entry) for entry in payload]
