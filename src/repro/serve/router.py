"""Consistent-hash routing of spec keys to shards.

:class:`ShardRouter` places every shard at ``replicas`` pseudo-random
points on a 64-bit hash ring (SHA-256 of ``"<salt>:<shard>:<replica>"``
— no dependence on ``PYTHONHASHSEED`` or process state) and sends a key
to the owner of the first ring point at or after the key's own hash.

Three properties carry the cluster design (property-tested in
``tests/serve/test_router.py``):

stable
    ``shard_for`` is a pure function of ``(key, n_shards, replicas,
    salt)`` — the same key maps to the same shard on every call, in
    every process, forever.  Routing identical requests to the same
    shard is what makes per-shard single-flight *globally* single-flight.

balanced
    With the default replica count, uniformly distributed keys land
    within a small factor of even across shards (max/min load ≤ 2 for
    realistic shard counts).

minimally disruptive
    Growing the ring from N to N+1 shards only moves the keys the new
    shard claims (expected 1/(N+1) of them); every key that moves, moves
    *to* the new shard.  A resize never reshuffles traffic between
    surviving shards, so their L1 caches stay warm.

Stability is also what makes the cluster's *respawn* path sound: a
worker that dies and is replaced by a fresh process keeps its shard id,
and because the ring is a pure function of ``(n_shards, replicas,
salt)`` — never of process identity, pids or uptime — every key routes
back to the original shard id after the respawn.  :meth:`signature`
fingerprints the ring layout so that invariant is directly assertable
(two routers with equal signatures route every key identically).
"""

from __future__ import annotations

import bisect
import hashlib

#: Ring points per shard.  More replicas smooth the balance at the cost
#: of ring-build time; 128 keeps max/min ≤ ~1.5 on uniform keys for
#: single-digit shard counts.
DEFAULT_REPLICAS = 128


def _hash64(data: str) -> int:
    """First 8 bytes of SHA-256, as an unsigned int — deterministic
    across processes and hash-seed settings."""
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big"
    )


class ShardRouter:
    """Map spec keys onto ``n_shards`` shards via a consistent-hash ring.

    Parameters
    ----------
    n_shards:
        Number of shards (>= 1).
    replicas:
        Ring points per shard (>= 1).
    salt:
        Namespace prefix for the ring-point hashes.  Two routers with
        the same ``(n_shards, replicas, salt)`` are interchangeable;
        changing the salt builds an unrelated ring.
    """

    def __init__(
        self,
        n_shards: int,
        replicas: int = DEFAULT_REPLICAS,
        salt: str = "repro-serve",
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.n_shards = n_shards
        self.replicas = replicas
        self.salt = salt
        points = []
        for shard in range(n_shards):
            for replica in range(replicas):
                points.append((_hash64(f"{salt}:{shard}:{replica}"), shard))
        points.sort()
        self._ring = [h for h, _ in points]
        self._owner = [s for _, s in points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` (stable across calls and processes)."""
        if self.n_shards == 1:
            return 0
        i = bisect.bisect_left(self._ring, _hash64(key))
        if i == len(self._ring):  # wrap past the last ring point
            i = 0
        return self._owner[i]

    def signature(self) -> str:
        """SHA-256 fingerprint of the ring layout.

        Two routers with equal signatures route every key identically —
        the respawn invariant the cluster leans on: the router survives
        a worker respawn untouched, so its signature (and therefore
        every key->shard decision) is the same before and after.
        """
        h = hashlib.sha256()
        for point, owner in zip(self._ring, self._owner):
            h.update(point.to_bytes(8, "big"))
            h.update(owner.to_bytes(4, "big"))
        return h.hexdigest()

    def assignment(self, keys) -> dict[int, list[str]]:
        """Group ``keys`` by owning shard (all shards present, even if
        empty) — the balance view the load generator reports."""
        out: dict[int, list[str]] = {s: [] for s in range(self.n_shards)}
        for key in keys:
            out[self.shard_for(key)].append(key)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ShardRouter(n_shards={self.n_shards}, "
            f"replicas={self.replicas}, salt={self.salt!r})"
        )
