"""Deterministic metric instruments and their registry.

All instruments are built for reproducibility: histograms use *fixed*
bucket boundaries chosen at construction (never adapted to the data), and
every dump is emitted in sorted-name order, so two identical simulations
produce byte-identical metric payloads — which is what lets the trace
digest cover metrics too.

Merge semantics (used when combining per-component registries, and
property-tested): counters add, gauges keep last/min/max coherently, and
histograms with identical boundaries add bucket-wise.  Merging
histograms with different boundaries is an error, never a silent
re-bucketing.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional, Sequence

#: Default histogram boundaries for durations in seconds: half-decade
#: steps from 1 µs to 1000 s.  Fixed so that results are deterministic
#: and mergeable across components and runs.
DEFAULT_TIME_BOUNDS: tuple[float, ...] = tuple(
    b * 10.0**e for e in range(-6, 3) for b in (1.0, 3.0)
) + (1000.0,)


class MetricError(ValueError):
    """Invalid metric operation (bad value, incompatible merge...)."""


class Counter:
    """A monotonically increasing count (events, messages, drops)."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (must be >= 0) to the count."""
        if n < 0:
            raise MetricError(f"counter {self.name!r}: negative increment {n}")
        self.value += n

    def merge(self, other: "Counter") -> None:
        """Fold another counter in (values add)."""
        if not isinstance(other, Counter):
            raise MetricError(f"cannot merge {type(other).__name__} into counter")
        self.value += other.value

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A sampled value; remembers the last, min and max observations."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def set(self, v: float) -> None:
        """Record the current value."""
        self.value = v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in: other's last value wins, extrema union."""
        if not isinstance(other, Gauge):
            raise MetricError(f"cannot merge {type(other).__name__} into gauge")
        if other.min is None:
            return
        if self.min is None:
            self.min, self.max = other.min, other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.value = other.value

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "value": self.value,
            "min": self.min,
            "max": self.max,
        }


class Histogram:
    """Fixed-boundary histogram of non-negative observations.

    ``bounds`` are the strictly increasing upper edges of the first
    ``len(bounds)`` buckets; one overflow bucket catches everything
    above the last edge.  An observation ``v`` lands in the first bucket
    whose edge satisfies ``v <= edge``.
    """

    kind = "histogram"

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BOUNDS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise MetricError(f"histogram {name!r}: empty bounds")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricError(
                f"histogram {name!r}: bounds must be strictly increasing"
            )
        self.name = name
        self.bounds = bounds
        self.counts: list[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, v: float) -> None:
        """Record one observation."""
        if v < 0:
            raise MetricError(f"histogram {self.name!r}: negative value {v}")
        self.counts[bisect.bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.sum += v

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in; boundaries must match exactly."""
        if not isinstance(other, Histogram):
            raise MetricError(
                f"cannot merge {type(other).__name__} into histogram"
            )
        if other.bounds != self.bounds:
            raise MetricError(
                f"histogram {self.name!r}: incompatible bucket boundaries"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    ``counter("mpi.messages")`` returns the existing instrument if one is
    registered under that name, creating it otherwise; asking for an
    existing name with a different kind is an error (it would silently
    fork the accounting).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise MetricError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BOUNDS
    ) -> Histogram:
        h = self._get_or_create(name, lambda: Histogram(name, bounds), "histogram")
        if h.bounds != tuple(float(b) for b in bounds):
            raise MetricError(
                f"histogram {name!r} already registered with other bounds"
            )
        return h

    def get(self, name: str):
        """The instrument registered under ``name`` (KeyError if none)."""
        return self._metrics[name]

    def value_of(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter/gauge, ``default`` if absent.

        Lets assertion-style readers (benchmark gates, chaos checks)
        probe a metric without creating it as a side effect; histograms
        have no single value and also report ``default``.
        """
        metric = self._metrics.get(name)
        return getattr(metric, "value", default) if metric else default

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold every instrument of ``other`` into this registry."""
        for name in sorted(other._metrics):
            theirs = other._metrics[name]
            mine = self._metrics.get(name)
            if mine is None:
                factory = {
                    "counter": lambda: Counter(name),
                    "gauge": lambda: Gauge(name),
                    "histogram": lambda: Histogram(name, theirs.bounds),
                }[theirs.kind]
                mine = self._metrics[name] = factory()
            mine.merge(theirs)

    def to_dict(self) -> dict:
        """Deterministic dump: sorted by name, stable field order."""
        return {name: self._metrics[name].to_dict() for name in self.names()}

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_dict` dump.

        The inverse of :meth:`to_dict` up to instrument state — this is
        how a shard worker's metrics cross a process boundary as plain
        JSON-able data (see :mod:`repro.serve.cluster`).  A malformed
        payload raises :class:`MetricError`, never silently drops data.
        """
        if not isinstance(payload, dict):
            raise MetricError(f"metrics dump must be a dict, got {payload!r}")
        reg = cls()
        for name in sorted(payload):
            entry = payload[name]
            if not isinstance(entry, dict) or "kind" not in entry:
                raise MetricError(f"metric {name!r}: malformed dump entry")
            kind = entry["kind"]
            try:
                if kind == "counter":
                    reg.counter(name).inc(entry["value"])
                elif kind == "gauge":
                    g = reg.gauge(name)
                    g.value = entry["value"]
                    g.min = entry["min"]
                    g.max = entry["max"]
                elif kind == "histogram":
                    h = reg.histogram(name, bounds=entry["bounds"])
                    counts = list(entry["counts"])
                    if len(counts) != len(h.counts):
                        raise MetricError(
                            f"histogram {name!r}: {len(counts)} buckets "
                            f"for {len(h.bounds)} bounds"
                        )
                    h.counts = counts
                    h.count = entry["count"]
                    h.sum = entry["sum"]
                else:
                    raise MetricError(
                        f"metric {name!r}: unknown kind {kind!r}"
                    )
            except (KeyError, TypeError) as exc:
                raise MetricError(
                    f"metric {name!r}: malformed dump entry: {exc}"
                ) from None
        return reg

    def merge_dict(self, payload: dict) -> None:
        """Fold a :meth:`to_dict` dump into this registry (see
        :meth:`merge` for the per-kind semantics)."""
        self.merge(MetricsRegistry.from_dict(payload))
