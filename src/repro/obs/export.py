"""Exporters: Chrome trace events, metric dumps, canonical trace digest.

Three consumers, three formats:

- :func:`chrome_trace` — the Trace Event Format dict that
  ``chrome://tracing`` and Perfetto load directly (complete ``"X"``
  events for spans, instant ``"i"`` events for raw trace records,
  metadata events naming the tracks);
- :func:`metrics_dump` / :func:`metrics_csv` — flat metric payloads,
  always including the tracers' drop accounting so overflow is explicit;
- :func:`trace_digest` — SHA-256 over a canonical (sorted, separator-
  stable) JSON normalisation of spans + records + metrics.  Two runs of
  the same :class:`~repro.core.experiment.ExperimentSpec` must produce
  the same digest; the determinism test suite asserts exactly that.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.span import Observability

#: Simulated seconds → trace-event microseconds.
_US = 1e6


def _json_safe(value: Any) -> Any:
    """Normalise attribute values for JSON payloads (enums, objects...)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


# -- Chrome trace ------------------------------------------------------------
def chrome_trace(obs: "Observability", include_records: bool = True) -> dict:
    """The run as a Trace Event Format dict (Perfetto-loadable)."""
    tracks = obs.spans.tracks()
    if include_records and len(obs.records):
        tracks = sorted(set(tracks) | {"events"})
    # "driver" first, the rest alphabetical — matches reading order.
    tracks.sort(key=lambda t: (t != "driver", t))
    tid_of = {track: i + 1 for i, track in enumerate(tracks)}

    events: list[dict] = []
    for track, tid in tid_of.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    for s in sorted(obs.spans.spans, key=lambda s: (s.start, s.span_id)):
        events.append(
            {
                "name": s.name,
                "cat": s.category,
                "ph": "X",
                "ts": s.start * _US,
                "dur": s.duration * _US,
                "pid": 1,
                "tid": tid_of[s.track],
                "args": _json_safe(dict(s.attrs)),
            }
        )
    if include_records:
        for r in obs.records.records:
            events.append(
                {
                    "name": f"{r.category}:{r.label}",
                    "cat": r.category,
                    "ph": "i",
                    "s": "g",
                    "ts": r.time * _US,
                    "pid": 1,
                    "tid": tid_of["events"],
                    "args": _json_safe(dict(r.data)),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, obs: "Observability") -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(obs)))
    return path


# -- metric dumps ------------------------------------------------------------
def metrics_dump(obs: "Observability") -> dict:
    """All metrics plus the tracers' drop accounting, dump-ready."""
    return {"metrics": obs.metrics.to_dict(), "trace": obs.drop_stats()}


def metrics_csv(obs: "Observability") -> str:
    """Flat CSV: ``name,kind,field,value`` — one row per scalar field."""
    lines = ["name,kind,field,value"]
    for name, payload in metrics_dump(obs)["metrics"].items():
        kind = payload["kind"]
        for fld in sorted(payload):
            if fld == "kind":
                continue
            value = payload[fld]
            if isinstance(value, list):
                value = ";".join(str(v) for v in value)
            lines.append(f"{name},{kind},{fld},{value}")
    for fld, value in sorted(obs.drop_stats().items()):
        if isinstance(value, dict):
            value = ";".join(f"{k}={v}" for k, v in sorted(value.items()))
        lines.append(f"trace,trace,{fld},{value}")
    return "\n".join(lines) + "\n"


# -- canonical digest ---------------------------------------------------------
def canonical_payload(obs: "Observability") -> dict:
    """Normalised view of a run: what the digest is computed over.

    Spans sort by (start, end, track, id); records keep their (already
    time-ordered) sequence; metric and attribute keys are sorted.  All
    numbers pass through unchanged — any float divergence between two
    runs is *supposed* to change the digest.
    """
    spans = [
        {
            "id": s.span_id,
            "parent": s.parent_id,
            "name": s.name,
            "category": s.category,
            "track": s.track,
            "start": s.start,
            "end": s.end,
            "attrs": _json_safe(dict(s.attrs)),
        }
        for s in sorted(
            obs.spans.spans, key=lambda s: (s.start, s.end, s.track, s.span_id)
        )
    ]
    records = [
        {
            "time": r.time,
            "category": r.category,
            "label": r.label,
            "data": _json_safe(dict(r.data)),
        }
        for r in obs.records.records
    ]
    return {
        "spans": spans,
        "records": records,
        "metrics": obs.metrics.to_dict(),
        "dropped": obs.drop_stats(),
    }


def trace_digest(obs: "Observability") -> str:
    """Stable SHA-256 hex digest of :func:`canonical_payload`."""
    blob = json.dumps(
        canonical_payload(obs),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
