"""Span tracing and the :class:`Observability` facade.

A :class:`Span` is a named interval of simulated time on a *track*
(driver, a node, a rank...).  Spans nest: the innermost open span on a
track at the time a child is opened (or added) becomes its parent, which
is what turns the flat event stream into the pipeline's phase tree —
``pipeline → deploy → node-3/pull`` or ``ep-7 → step → halo``.

The tracer is layered over :mod:`repro.des.trace`: completed spans can
be lowered to paired begin/end :class:`~repro.des.trace.TraceRecord`\\ s,
and the facade carries a plain record :class:`~repro.des.trace.Tracer`
alongside for the point events (``mpi.send``, ``mpi.collective``...)
components already emit.

Like the base tracer, the span tracer has a hard record limit with
explicit drop accounting — overflow never silently skews a dump.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional

from repro.des.trace import TraceRecord, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.engine import Environment
    from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class Span:
    """One completed, named interval on a track."""

    span_id: int
    parent_id: int  #: 0 = root (no enclosing span on the track)
    name: str
    category: str
    track: str
    start: float
    end: float
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanTracer:
    """Collects :class:`Span`\\ s with per-track nesting.

    Parameters
    ----------
    limit:
        Hard cap on stored spans; overflow increments :attr:`dropped`
        (and :attr:`dropped_by_category`) instead of growing the list.
    """

    def __init__(self, limit: int = 200_000) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self._limit = limit
        self.spans: list[Span] = []
        self.dropped = 0
        self.dropped_by_category: dict[str, int] = {}
        #: track -> stack of (span_id, name, category, start, attrs).
        self._open: dict[str, list[tuple[int, str, str, float, dict]]] = {}
        self._track_of: dict[int, str] = {}
        self._next_id = 1

    # -- recording ----------------------------------------------------------
    def begin(
        self,
        name: str,
        category: str,
        start: float,
        track: str = "driver",
        **attrs: Any,
    ) -> int:
        """Open a span; returns its id for :meth:`end`."""
        sid = self._next_id
        self._next_id += 1
        self._open.setdefault(track, []).append(
            (sid, name, category, start, attrs)
        )
        self._track_of[sid] = track
        return sid

    def end(self, span_id: int, end: float) -> Optional[Span]:
        """Close the span opened as ``span_id`` (must be the innermost
        open span on its track — unbalanced instrumentation is an error,
        not a corrupted tree)."""
        track = self._track_of.pop(span_id, None)
        if track is None:
            raise ValueError(f"span {span_id} is not open")
        stack = self._open[track]
        if stack[-1][0] != span_id:
            raise ValueError(
                f"span {span_id} is not the innermost open span on "
                f"track {track!r}"
            )
        sid, name, category, start, attrs = stack.pop()
        parent = stack[-1][0] if stack else 0
        return self._store(
            Span(sid, parent, name, category, track, start, end, attrs)
        )

    def add(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        track: str = "driver",
        **attrs: Any,
    ) -> Optional[Span]:
        """Record an already-finished span (parented to the innermost
        open span on ``track``, if any)."""
        sid = self._next_id
        self._next_id += 1
        stack = self._open.get(track)
        parent = stack[-1][0] if stack else 0
        return self._store(
            Span(sid, parent, name, category, track, start, end, attrs)
        )

    def _store(self, span: Span) -> Optional[Span]:
        if span.end < span.start:
            raise ValueError(
                f"span {span.name!r} ends ({span.end}) before it starts "
                f"({span.start})"
            )
        if len(self.spans) >= self._limit:
            self.dropped += 1
            self.dropped_by_category[span.category] = (
                self.dropped_by_category.get(span.category, 0) + 1
            )
            return None
        self.spans.append(span)
        return span

    @contextmanager
    def span(
        self,
        env: "Environment",
        name: str,
        category: str = "phase",
        track: str = "driver",
        **attrs: Any,
    ):
        """Context manager timing its body in simulated time."""
        sid = self.begin(name, category, env.now, track, **attrs)
        try:
            yield sid
        finally:
            self.end(sid, env.now)

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    @property
    def total_seen(self) -> int:
        """Spans offered to the tracer: stored + dropped."""
        return len(self.spans) + self.dropped

    def open_count(self) -> int:
        """Spans currently open (should be 0 after a balanced run)."""
        return sum(len(stack) for stack in self._open.values())

    def tracks(self) -> list[str]:
        """Track names with at least one stored span, sorted."""
        return sorted({s.track for s in self.spans})

    def by_category(self, category: str) -> list[Span]:
        return [s for s in self.spans if s.category == category]

    def by_track(self, track: str) -> list[Span]:
        return [s for s in self.spans if s.track == track]

    def category_seconds(self) -> dict[str, float]:
        """Total span duration per category (nested spans double-count
        their parents — compare within one tree level)."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.category] = out.get(s.category, 0.0) + s.duration
        return out

    def children_of(self, span_id: int) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    # -- layering & merging ---------------------------------------------------
    def to_records(self) -> list[TraceRecord]:
        """Lower spans to paired ``span.begin``/``span.end`` records,
        time-ordered — the :mod:`repro.des.trace` view of the same data."""
        records: list[TraceRecord] = []
        for s in self.spans:
            data = {"span_id": s.span_id, "track": s.track, **s.attrs}
            records.append(TraceRecord(s.start, "span.begin", s.name, data))
            records.append(TraceRecord(s.end, "span.end", s.name, data))
        records.sort(key=lambda r: r.time)
        return records

    def merge(self, other: "SpanTracer") -> None:
        """Fold another tracer's completed spans in.

        Preserves counts: this tracer's ``total_seen`` grows by exactly
        ``other.total_seen`` (overflow past the limit lands in
        :attr:`dropped`).  Open spans are not merged.
        """
        for s in other.spans:
            self._store(s)
        self.dropped += other.dropped
        for cat, n in sorted(other.dropped_by_category.items()):
            self.dropped_by_category[cat] = (
                self.dropped_by_category.get(cat, 0) + n
            )
        self.spans.sort(key=lambda s: (s.start, s.end, s.track, s.span_id))


class Observability:
    """Span tracer + record tracer + metrics, threaded through a run.

    Parameters
    ----------
    env:
        The simulation environment (may be bound later via :meth:`bind` —
        the runner does this, since it creates the environment itself).
    categories:
        Category filter for the *record* tracer (spans are never
        filtered).
    span_limit / record_limit:
        Hard caps with explicit drop accounting.
    """

    def __init__(
        self,
        env: Optional["Environment"] = None,
        categories: Optional[Iterable[str]] = None,
        span_limit: int = 200_000,
        record_limit: int = 1_000_000,
    ) -> None:
        self.env = env
        self.spans = SpanTracer(limit=span_limit)
        self.records = Tracer(categories=categories, limit=record_limit)
        from repro.obs.metrics import MetricsRegistry

        self.metrics: "MetricsRegistry" = MetricsRegistry()

    def bind(self, env: "Environment", engine_metrics: bool = True) -> None:
        """Attach to ``env``; optionally hook the event loop."""
        self.env = env
        if engine_metrics:
            self.attach_engine(env)

    def attach_engine(self, env: "Environment") -> None:
        """Install an event-loop hook counting processed events and
        sampling queue depth (see ``Environment.set_step_hook``)."""
        events = self.metrics.counter("des.events_processed")
        depth = self.metrics.gauge("des.queue_depth")
        # The hook runs once per processed event — the hottest callback in
        # an instrumented run.  Counter.inc/Gauge.set are inlined (their
        # validation never triggers for these inputs), and the queue/ring
        # containers are bound once: the engine mutates them in place and
        # never rebinds.
        wheel = env._wheel
        ring = env._ring

        def hook(event: Any, when: float) -> None:
            events.value += 1
            d = wheel._size + len(ring)
            depth.value = d
            if depth.min is None or d < depth.min:
                depth.min = d
            if depth.max is None or d > depth.max:
                depth.max = d

        env.set_step_hook(hook)

    def _require_env(self) -> "Environment":
        if self.env is None:
            raise RuntimeError(
                "Observability is not bound to an Environment yet"
            )
        return self.env

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "phase",
        track: str = "driver",
        **attrs: Any,
    ):
        """Span over the body, timed with the bound environment's clock."""
        env = self._require_env()
        sid = self.spans.begin(name, category, env.now, track, **attrs)
        try:
            yield sid
        finally:
            self.spans.end(sid, env.now)

    def add_span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        track: str = "driver",
        **attrs: Any,
    ) -> Optional[Span]:
        """Record an already-timed span."""
        return self.spans.add(name, category, start, end, track, **attrs)

    def event(self, category: str, label: str, **data: Any) -> None:
        """Point event at the current simulated time (record tracer)."""
        env = self._require_env()
        self.records.record(env.now, category, label, **data)

    def merge(self, other: "Observability") -> None:
        """Fold another run's spans, records and metrics in."""
        self.spans.merge(other.spans)
        self.records.merge(other.records)
        self.metrics.merge(other.metrics)

    def drop_stats(self) -> dict:
        """Explicit overflow accounting for dumps — dropped data must be
        visible, not silently missing from totals."""
        return {
            "spans_stored": len(self.spans),
            "spans_dropped": self.spans.dropped,
            "spans_dropped_by_category": dict(
                sorted(self.spans.dropped_by_category.items())
            ),
            "records_stored": len(self.records),
            "records_dropped": self.records.dropped,
            "records_dropped_by_category": dict(
                sorted(self.records.dropped_by_category.items())
            ),
        }
