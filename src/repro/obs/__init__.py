"""Observability: spans, metrics, and deterministic trace exports.

The subsystem has three layers:

- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` instruments that
  components register into instead of keeping ad-hoc totals;
- :mod:`repro.obs.span` — a :class:`SpanTracer` recording nested,
  per-track :class:`Span` intervals (image build → deploy → launch →
  per-timestep solver phases), layered over the flat
  :class:`repro.des.trace.Tracer` records;
- :mod:`repro.obs.export` — Chrome-trace JSON (loadable in
  ``chrome://tracing`` / Perfetto), flat metric dumps, and a canonical
  SHA-256 **trace digest** that turns "same spec ⇒ identical simulation"
  into a one-line assertion.

:class:`Observability` bundles the three and is what the pipeline
threads through itself (``ExperimentRunner.run(spec, obs=...)``).
Everything is opt-in: with ``obs=None`` the instrumented code paths
reduce to a single ``is not None`` check.
"""

from repro.obs.export import (
    canonical_payload,
    chrome_trace,
    metrics_csv,
    metrics_dump,
    trace_digest,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.span import Observability, Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "SpanTracer",
    "canonical_payload",
    "chrome_trace",
    "metrics_csv",
    "metrics_dump",
    "trace_digest",
    "write_chrome_trace",
]
