"""The named workload registry.

A process-global, insertion-ordered map ``name -> Workload`` instance.
The built-in workloads (``alya``, ``stencil``, ``graph``) register
themselves when :mod:`repro.workloads` is imported; third-party
workloads call :func:`register` with their own
:class:`~repro.workloads.base.Workload` subclass instance (see
``docs/workloads.md`` for the how-to and the determinism contract).

Lookup failures list what *is* registered, so a typo in
``--workload`` or ``ExperimentSpec.workload`` fails loudly and
immediately — never as a silently wrong simulation.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import Workload

_REGISTRY: "dict[str, Workload]" = {}


def register(workload: Workload, *, replace: bool = False) -> Workload:
    """Add ``workload`` under its :attr:`~Workload.name`.

    Registering a second workload under an existing name raises unless
    ``replace=True`` — accidental shadowing of a built-in would change
    every spec key's meaning without changing any key.
    """
    name = workload.name
    if not name or not isinstance(name, str):
        raise ValueError("a workload needs a non-empty string name")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"workload {name!r} is already registered "
            f"(pass replace=True to shadow it deliberately)"
        )
    _REGISTRY[name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """The registered workload called ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; registered: {list_workloads()}"
        ) from None


def list_workloads() -> "list[str]":
    """Registered names, in registration order (built-ins first)."""
    return list(_REGISTRY)


def iter_workloads() -> Iterator[Workload]:
    return iter(_REGISTRY.values())
