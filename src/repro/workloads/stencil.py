"""Halo-exchange stencil: nearest-neighbour p2p, latency-bound.

A structured-grid relaxation (7-point-stencil class): each step does a
small amount of per-cell arithmetic and then exchanges one-cell-deep
ghost layers with its grid neighbours — several times per step, one
field per exchange.  There are **no collectives at all**: every message
is a point-to-point neighbour send, the messages are small, and as the
partition shrinks the exchange cost converges to pure fabric latency.
That is the opposite corner of the communication space from Alya's
CG loop (collective-heavy, bandwidth-mixed) and exercises the link
latency / software-overhead path of the fabric model that Alya's
collectives never isolate.

Every ``checkpoint_every`` steps each endpoint also writes its block to
the shared filesystem — the IO phase of the workload interface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import (
    ComputePhase,
    HaloPhase,
    IOPhase,
    PhasedWorkload,
    compute_seconds,
)


@dataclass(frozen=True)
class StencilWorkModel:
    """Per-step cost description of one halo-exchange stencil case.

    Attributes
    ----------
    n_cells:
        Global grid points.
    flops_per_cell_step:
        Arithmetic per point per sweep (a fused multi-field 7-point
        update: ~40 flops).
    sweeps_per_step:
        Relaxation sweeps per time step — each sweep is one compute
        phase followed by one ghost exchange (more sweeps, more
        latency-bound messages).
    halo_surface_coeff / halo_fields / bytes_per_value:
        Ghost layer size: ``coeff * cells_per_part^(2/3)`` cells per
        neighbour, ``halo_fields`` values each (3-D surface-to-volume
        scaling, one-cell depth).
    memory_bytes_per_cell:
        Resident bytes per point (solution + rhs + coefficients).
    checkpoint_every / checkpoint_bytes_per_cell:
        Every that many steps each endpoint writes its block's
        checkpoint to the shared filesystem (0 = never).
    nominal_timesteps:
        Steps of the production run (simulated runs do a few and scale).
    """

    n_cells: int
    flops_per_cell_step: float = 40.0
    sweeps_per_step: int = 6
    halo_surface_coeff: float = 1.0
    halo_fields: int = 1
    bytes_per_value: float = 8.0
    memory_bytes_per_cell: float = 64.0
    checkpoint_every: int = 0
    checkpoint_bytes_per_cell: float = 16.0
    nominal_timesteps: int = 1000

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise ValueError("n_cells must be >= 1")
        if self.flops_per_cell_step <= 0:
            raise ValueError("flops_per_cell_step must be positive")
        if self.sweeps_per_step < 1:
            raise ValueError("sweeps_per_step must be >= 1")
        if self.halo_surface_coeff <= 0 or self.halo_fields < 1:
            raise ValueError("halo geometry must be positive")
        if self.bytes_per_value <= 0 or self.memory_bytes_per_cell <= 0:
            raise ValueError("byte sizes must be positive")
        if self.checkpoint_every < 0 or self.checkpoint_bytes_per_cell < 0:
            raise ValueError("checkpoint parameters must be >= 0")
        if self.nominal_timesteps < 1:
            raise ValueError("nominal_timesteps must be >= 1")

    def cells_per_part(self, n_parts: int, imbalance: float = 1.05) -> float:
        """Points of the largest subdomain (imbalance folded in)."""
        if n_parts < 1:
            raise ValueError("n_parts must be >= 1")
        return self.n_cells / n_parts * imbalance

    def halo_bytes(self, n_parts: int) -> float:
        """Bytes of one ghost exchange, per neighbour."""
        cells = self.halo_surface_coeff * self.cells_per_part(n_parts) ** (
            2.0 / 3.0
        )
        return cells * self.halo_fields * self.bytes_per_value

    def memory_per_node(self, n_nodes: int) -> float:
        """Resident bytes one node needs for its share of the grid."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return self.n_cells / n_nodes * self.memory_bytes_per_cell * 1.05


class HaloStencilWorkload(PhasedWorkload):
    """The stencil as a registrable phase program."""

    name = "stencil"
    workmodel_type = StencilWorkModel
    description = (
        "halo-exchange stencil: nearest-neighbour ghost exchanges only "
        "(latency-bound p2p; no collectives)"
    )
    topology = "grid"
    # Measured on the Lenox 1/2/4-node reference grid: surface-to-volume
    # halos keep the stencil the best scaler of the built-ins, but the
    # latency-bound exchanges still cost a constant per sweep.
    strong_efficiency_floor = 0.25
    weak_growth_ceiling = 4.0

    def default_workmodel(self, fig: str = "fig1") -> StencilWorkModel:
        if fig == "fig1":
            # Lenox-sized: fits 1-4 nodes of 128 GiB comfortably.
            return StencilWorkModel(
                n_cells=32_000_000, checkpoint_every=4,
                nominal_timesteps=1000,
            )
        if fig == "fig3":
            # MareNostrum4-sized: the strong-scaling shape.
            return StencilWorkModel(
                n_cells=400_000_000, checkpoint_every=8,
                nominal_timesteps=1000,
            )
        raise ValueError(f"unknown figure shape {fig!r} (fig1|fig3)")

    def phases(self, work, ctx, n_endpoints: int, step: int):
        parts = n_endpoints * (
            ctx.ranks_per_node if ctx.endpoint_is_node else 1
        )
        sweep_flops = work.flops_per_cell_step * work.cells_per_part(parts)
        sweep_seconds = compute_seconds(sweep_flops, ctx)
        # Only node-boundary surfaces cross the network in node mode,
        # so halos scale with the endpoint partition (as in Alya).
        halo = work.halo_bytes(n_endpoints)
        out = []
        for sweep in range(work.sweeps_per_step):
            out.append(ComputePhase("compute", sweep_seconds))
            out.append(HaloPhase("halo", halo, op=sweep))
        if work.checkpoint_every and (step + 1) % work.checkpoint_every == 0:
            per_endpoint = (
                work.n_cells / n_endpoints * work.checkpoint_bytes_per_cell
            )
            out.append(IOPhase("checkpoint", per_endpoint))
        return tuple(out)
