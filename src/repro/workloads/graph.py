"""Phase-structured graph analytics: shrinking rounds, invariant-asserted.

Models the round-structured distributed graph algorithms (MIS /
connectivity / coarsening pipelines) whose communication character is
unlike either Alya or the stencil: each *round* is sparsify →
local-compute → integrate, the active vertex set shrinks geometrically
between rounds, and therefore so does every message — the traffic is
front-loaded, collective-heavy, and sublinear in the input.  A final
finish round gathers the converged labelling to a root and broadcasts
the verdict.

The shrink structure is not just descriptive, it is *asserted*:
:meth:`GraphWorkload.phases` raises if the per-round communication
volumes are not strictly decreasing or if the total traffic of a step
exceeds the geometric-series bound implied by the shrink factor.  A
miscalibrated model fails loudly instead of quietly simulating a
different algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import (
    CollectivePhase,
    ComputePhase,
    OPS_PER_STEP,
    PhasedWorkload,
    compute_seconds,
)

#: Op offsets consumed per round (sparsify allgather + integrate
#: allreduce); the finish pair sits after the last round's block.
_OPS_PER_ROUND = 2


@dataclass(frozen=True)
class GraphWorkModel:
    """Per-step cost description of one round-structured graph case.

    Attributes
    ----------
    n_cells:
        Vertices of the global graph (named ``n_cells`` so the memory
        guardrail and the universe nudge knob treat every work model
        uniformly).
    avg_degree:
        Mean adjacency degree; edges = ``n_cells * avg_degree / 2``.
    flops_per_edge:
        Arithmetic per edge touch in the local-compute phase.
    sample_flops_per_edge:
        Arithmetic per edge touch while sparsifying (cheaper: a hash
        and a comparison, not the full kernel).
    sample_fraction:
        Share of the active vertices whose sketch entries the sparsify
        phase actually allgathers, in ``(0, 1]`` — sampling is what
        keeps the exchanged sketch far below the full frontier.
    shrink:
        Per-round survival fraction of the active vertex set, in
        ``(0, 1)`` — round ``r`` works on ``n_cells * shrink**r``
        vertices, which is what makes total traffic sublinear.
    rounds:
        Sparsify/local/integrate rounds per step.
    bytes_per_vertex:
        Wire bytes per active vertex in the sparsify and integrate
        exchanges (id + label + weight).
    memory_bytes_per_cell:
        Resident bytes per vertex including its adjacency share.
    nominal_timesteps:
        Passes of the production pipeline (simulated runs do a few and
        scale up).
    """

    n_cells: int
    avg_degree: float = 16.0
    flops_per_edge: float = 24.0
    sample_flops_per_edge: float = 4.0
    sample_fraction: float = 0.05
    shrink: float = 0.5
    rounds: int = 6
    bytes_per_vertex: float = 12.0
    memory_bytes_per_cell: float = 96.0
    nominal_timesteps: int = 30

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise ValueError("n_cells must be >= 1")
        if self.avg_degree <= 0:
            raise ValueError("avg_degree must be positive")
        if self.flops_per_edge <= 0 or self.sample_flops_per_edge <= 0:
            raise ValueError("per-edge flop counts must be positive")
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        if not 0.0 < self.shrink < 1.0:
            raise ValueError("shrink must be in (0, 1)")
        max_rounds = (OPS_PER_STEP - 2) // _OPS_PER_ROUND
        if not 1 <= self.rounds <= max_rounds:
            raise ValueError(f"rounds must be in [1, {max_rounds}]")
        if self.bytes_per_vertex <= 0 or self.memory_bytes_per_cell <= 0:
            raise ValueError("byte sizes must be positive")
        if self.nominal_timesteps < 1:
            raise ValueError("nominal_timesteps must be >= 1")

    def active_vertices(self, r: int) -> float:
        """Active vertex count entering round ``r`` (0-based)."""
        if r < 0:
            raise ValueError("round index must be >= 0")
        return self.n_cells * self.shrink**r

    def memory_per_node(self, n_nodes: int) -> float:
        """Resident bytes one node needs for its graph partition."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return self.n_cells / n_nodes * self.memory_bytes_per_cell * 1.05


class GraphWorkload(PhasedWorkload):
    """The round-structured graph pipeline as a registrable workload."""

    name = "graph"
    workmodel_type = GraphWorkModel
    description = (
        "round-structured graph analytics: sparsify > local-compute > "
        "integrate rounds with geometrically shrinking traffic, then a "
        "gather+bcast finish (invariants asserted)"
    )
    topology = "chain"
    # Measured on the Lenox 1/2/4-node reference grid: every round ends
    # in whole-communicator collectives whose cost grows with the
    # communicator, so strong scaling is honestly terrible — that
    # contrast with the stencil is the point of having it.
    strong_efficiency_floor = 0.01
    weak_growth_ceiling = 60.0

    def default_workmodel(self, fig: str = "fig1") -> GraphWorkModel:
        if fig == "fig1":
            # Lenox-sized: a social-network-scale component sweep.
            return GraphWorkModel(n_cells=10_000_000)
        if fig == "fig3":
            # MareNostrum4-sized: web-graph scale.
            return GraphWorkModel(n_cells=300_000_000, rounds=8)
        raise ValueError(f"unknown figure shape {fig!r} (fig1|fig3)")

    def phases(self, work, ctx, n_endpoints: int, step: int):
        parts = n_endpoints * (
            ctx.ranks_per_node if ctx.endpoint_is_node else 1
        )
        out = []
        round_volumes = []
        for r in range(work.rounds):
            active = work.active_vertices(r)
            active_edges = active * work.avg_degree / 2.0
            op0 = r * _OPS_PER_ROUND
            # Sparsify: hash-sample the active edges, then allgather
            # the sampled sketch so every rank sees the candidate set.
            sample_seconds = compute_seconds(
                work.sample_flops_per_edge * active_edges / parts, ctx
            )
            sketch_per_rank = (
                active * work.sample_fraction * work.bytes_per_vertex / parts
            )
            # Local compute: the full kernel over the surviving edges.
            local_seconds = compute_seconds(
                work.flops_per_edge * active_edges / parts, ctx
            )
            # Integrate: reduce the round's compressed label-update
            # delta everywhere (the decided vertices' sketch entries).
            update_bytes = (
                active * work.shrink * work.sample_fraction
                * work.bytes_per_vertex
            )
            out.append(ComputePhase("sparsify", sample_seconds))
            out.append(
                CollectivePhase(
                    "sketch", "allgather", sketch_per_rank, op=op0
                )
            )
            out.append(ComputePhase("local", local_seconds))
            out.append(
                CollectivePhase(
                    "integrate", "allreduce", update_bytes, op=op0 + 1
                )
            )
            round_volumes.append(sketch_per_rank * parts + update_bytes)
        # Finish: gather the surviving labelling, broadcast the verdict.
        final_active = work.active_vertices(work.rounds) * work.sample_fraction
        op_fin = work.rounds * _OPS_PER_ROUND
        out.append(
            CollectivePhase(
                "finish-gather",
                "gather",
                final_active * work.bytes_per_vertex / parts,
                op=op_fin,
            )
        )
        out.append(
            CollectivePhase(
                "finish-bcast",
                "bcast",
                final_active * work.bytes_per_vertex,
                op=op_fin + 1,
            )
        )
        self._check_invariants(work, round_volumes)
        return tuple(out)

    @staticmethod
    def _check_invariants(work, round_volumes) -> None:
        """The shrink structure, enforced.

        Raises if per-round traffic is not strictly decreasing, or if a
        step's total traffic exceeds the geometric-series bound
        ``first_round / (1 - shrink)`` — either means the model no
        longer describes a shrinking-rounds algorithm.
        """
        for r in range(1, len(round_volumes)):
            if not round_volumes[r] < round_volumes[r - 1]:
                raise ValueError(
                    f"graph workload invariant violated: round {r} moves "
                    f"{round_volumes[r]:.3g} B, not less than round "
                    f"{r - 1}'s {round_volumes[r - 1]:.3g} B"
                )
        total = sum(round_volumes)
        bound = round_volumes[0] / (1.0 - work.shrink)
        if total > bound * (1.0 + 1e-9):
            raise ValueError(
                f"graph workload invariant violated: step traffic "
                f"{total:.3g} B exceeds the geometric bound {bound:.3g} B"
            )
