"""Pluggable workload registry: application models beyond Alya.

Importing this package registers the built-in workloads::

    alya     the paper's production CFD/FSI simulation (byte-identical
             to the pre-registry code path)
    stencil  halo-exchange stencil (latency-bound nearest-neighbour p2p)
    graph    round-structured graph analytics (shrinking collectives)

Third-party workloads subclass :class:`~repro.workloads.base.Workload`
(usually :class:`~repro.workloads.base.PhasedWorkload`) and call
:func:`register` — see ``docs/workloads.md``.
"""

from repro.workloads.alya import AlyaWorkload
from repro.workloads.base import (
    CollectivePhase,
    ComputePhase,
    HaloPhase,
    IOPhase,
    OPS_PER_STEP,
    PhaseBreakdown,
    PhasedApp,
    PhasedWorkload,
    Workload,
    compute_seconds,
    grid_neighbors,
)
from repro.workloads.graph import GraphWorkload, GraphWorkModel
from repro.workloads.registry import (
    get_workload,
    iter_workloads,
    list_workloads,
    register,
)
from repro.workloads.stencil import HaloStencilWorkload, StencilWorkModel

register(AlyaWorkload())
register(HaloStencilWorkload())
register(GraphWorkload())

__all__ = [
    "AlyaWorkload",
    "CollectivePhase",
    "ComputePhase",
    "GraphWorkModel",
    "GraphWorkload",
    "HaloPhase",
    "HaloStencilWorkload",
    "IOPhase",
    "OPS_PER_STEP",
    "PhaseBreakdown",
    "PhasedApp",
    "PhasedWorkload",
    "StencilWorkModel",
    "Workload",
    "compute_seconds",
    "get_workload",
    "grid_neighbors",
    "iter_workloads",
    "list_workloads",
    "register",
]
