"""The workload interface: phase programs that lower to the DES.

A *workload* is an application model the simulator can run in place of
Alya: it owns a work-model dataclass (the per-step cost description that
rides on :class:`~repro.core.experiment.ExperimentSpec`), and it knows
how to turn that model into the SPMD generator each simulated endpoint
executes.  Two lowering styles coexist:

- :class:`Workload` is the minimal contract — ``build_app`` returns any
  object with a ``rank_body(comm, ep)`` generator.  The Alya port uses
  it directly so :class:`~repro.alya.app.SimulatedAlya`'s hand-written
  lowering (and its byte-identical golden traces) stay untouched.
- :class:`PhasedWorkload` is the declarative style new workloads should
  use: per-step the workload emits a tuple of *phases* —
  :class:`ComputePhase`, :class:`HaloPhase`, :class:`CollectivePhase`,
  :class:`IOPhase` — and the shared :class:`PhasedApp` compiles them to
  DES events exactly the way ``SimulatedAlya`` lowers its own steps
  (compute as straggler-scaled timeouts, halos as non-blocking
  neighbour sendrecv joined with
  :class:`~repro.des.events.JoinAll`, collectives through
  :mod:`repro.mpi.collectives`, IO as shared-filesystem transfers).

Determinism contract (every workload must honour it — the executor
cache, the golden-trace suite and the serving digests all assume it):

- ``phases()`` must be a pure function of ``(work, ctx, n_endpoints,
  step)`` — no RNG, no wall clock, no dict/set iteration whose order
  can leak into phase order or op ids;
- op ids must be distinct per phase within one step (the step's op
  window is :data:`OPS_PER_STEP` wide; collective round tags live at
  ``op * 1024 + round``, so consecutive integer offsets are safe for
  up to 1024 internal rounds);
- observability markers are emitted by the lowering, named after each
  phase, on the endpoint's ``ep-{n}`` track — a workload never touches
  ``obs`` directly.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass, field
from typing import ClassVar, Optional, Sequence

from repro.des.events import JoinAll
from repro.mpi import collectives
from repro.mpi.comm import SimComm
from repro.mpi.datatypes import collective_tag

#: Op-id stride reserved for one simulated time step (matches
#: :mod:`repro.alya.app` so phase programs and the Alya lowering share
#: the same tag arithmetic).
OPS_PER_STEP = 2048


def compute_seconds(flops: float, ctx) -> float:
    """Wall seconds of ``flops`` of arithmetic under ``ctx``.

    The same pipeline ``SimulatedAlya`` applies: sustained (not peak)
    core flop rate, the OpenMP threading model, and the container
    runtime's CPU overhead multiplier.
    """
    if flops < 0:
        raise ValueError("flops must be >= 0")
    serial = flops / ctx.sustained_core_flops
    threaded = ctx.omp.threaded_time(serial, ctx.threads_per_rank)
    return threaded * ctx.cpu_overhead


def grid_neighbors(
    rankmap, ep: int, endpoint_is_node: bool, topology: str = "grid"
) -> "list[tuple[int, int]]":
    """Neighbours of endpoint ``ep`` as ``(neighbor, axis)`` pairs.

    The same layout :meth:`repro.alya.app.SimulatedAlya.neighbors`
    models: a (nodes x per-node-slot) process grid where axis 0 links
    consecutive endpoints on one node (shared memory) and axis 1 links
    the same slot on adjacent nodes (fabric); ``"chain"`` is the 1-D
    slab partition (at most two neighbours).  In node mode the grid
    degenerates to a chain of nodes.
    """
    if topology == "chain":
        out: list[tuple[int, int]] = []
        if ep > 0:
            out.append((ep - 1, 0))
        if ep < rankmap.n_ranks - 1:
            out.append((ep + 1, 0))
        return out
    per_node = 1 if endpoint_is_node else rankmap.ranks_per_node
    node, j = divmod(ep, per_node) if per_node > 1 else (ep, 0)
    if endpoint_is_node:
        node, j = ep, 0
    out = []
    if per_node > 1:
        if j > 0:
            out.append((ep - 1, 0))
        if j < per_node - 1 and ep + 1 < rankmap.n_ranks:
            out.append((ep + 1, 0))
    if node > 0:
        out.append((ep - per_node, 1))
    if node < rankmap.n_nodes - 1 and ep + per_node < rankmap.n_ranks:
        out.append((ep + per_node, 1))
    return out


# ---------------------------------------------------------------------------
# The phase IR.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ComputePhase:
    """Arithmetic: ``seconds`` of wall time on the endpoint.

    The lowering scales it by the endpoint node's straggler factor when
    a fault injector is armed (exactly like the Alya compute phase).
    """

    name: str
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("compute seconds must be >= 0")


@dataclass(frozen=True)
class HaloPhase:
    """Nearest-neighbour exchange: ``nbytes`` with every grid neighbour.

    Lowered to non-blocking sends/receives joined at the end — the
    latency-bound p2p pattern collectives never exercise.  ``op`` is the
    phase's offset inside the step's op window (distinct per phase).
    """

    name: str
    nbytes: float
    op: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("halo nbytes must be >= 0")
        if not 0 <= self.op < OPS_PER_STEP:
            raise ValueError(f"op offset must be in [0, {OPS_PER_STEP})")


#: Collective kinds :class:`CollectivePhase` can lower to.
COLLECTIVE_KINDS = ("allreduce", "allgather", "gather", "bcast")


@dataclass(frozen=True)
class CollectivePhase:
    """A collective over the whole communicator.

    ``nbytes`` is the payload per rank for ``allgather``/``gather`` and
    the full payload for ``allreduce``/``bcast`` — the same conventions
    as :mod:`repro.mpi.collectives`.
    """

    name: str
    kind: str
    nbytes: float
    op: int
    root: int = 0

    def __post_init__(self) -> None:
        if self.kind not in COLLECTIVE_KINDS:
            raise ValueError(
                f"unknown collective kind {self.kind!r}; "
                f"expected one of {COLLECTIVE_KINDS}"
            )
        if self.nbytes < 0:
            raise ValueError("collective nbytes must be >= 0")
        if not 0 <= self.op < OPS_PER_STEP:
            raise ValueError(f"op offset must be in [0, {OPS_PER_STEP})")


@dataclass(frozen=True)
class IOPhase:
    """Shared-filesystem IO: ``nbytes`` read/written by this endpoint.

    Lowered to a delay of ``nbytes / io_bandwidth`` (the cluster's
    shared-FS bandwidth, divided fairly when every endpoint writes at
    once is the workload's own modelling choice — pass per-endpoint
    bytes here).
    """

    name: str
    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("IO nbytes must be >= 0")


Phase = object  # union of the four phase dataclasses (duck-typed)


# ---------------------------------------------------------------------------
# Where the time went.
# ---------------------------------------------------------------------------


@dataclass
class PhaseBreakdown:
    """Per-bucket wall seconds of one endpoint (compute / halo /
    collective / io), compatible with the runner's phase aggregation
    (same ``fractions()`` contract as
    :class:`~repro.alya.app.PhaseTimes`)."""

    seconds: dict = field(default_factory=dict)

    def add(self, bucket: str, dt: float) -> None:
        self.seconds[bucket] = self.seconds.get(bucket, 0.0) + dt

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> "dict[str, float]":
        t = self.total
        if t <= 0:
            return {}
        return {k: v / t for k, v in self.seconds.items()}


#: Which breakdown bucket each phase kind bills to.
_BUCKET = {
    ComputePhase: "compute",
    HaloPhase: "halo",
    CollectivePhase: "collective",
    IOPhase: "io",
}


# ---------------------------------------------------------------------------
# The workload contract.
# ---------------------------------------------------------------------------


class Workload(abc.ABC):
    """One registrable application model.

    Subclasses set :attr:`name` (the registry key and the value of
    :attr:`ExperimentSpec.workload <repro.core.experiment.ExperimentSpec>`)
    and :attr:`workmodel_type` (the dataclass their specs must carry),
    and implement :meth:`default_workmodel` and :meth:`build_app`.
    """

    #: Registry key; also what ``ExperimentSpec.workload`` names.
    name: ClassVar[str] = ""
    #: Work-model dataclass :meth:`validate_spec` accepts.
    workmodel_type: ClassVar[type] = object
    #: One-line description for ``repro-study``'s listings.
    description: ClassVar[str] = ""
    #: Documented scaling envelope on the Lenox reference grid
    #: (1/2/4 nodes, 7 ranks x 4 threads, default work model): the
    #: lowest parallel efficiency any strong-scaling point may show,
    #: and the largest step-time growth factor a weak-scaling series
    #: may show.  ``repro-study scaling`` and the workload-scaling
    #: bench gate against these — a communication-bound workload
    #: documents an honest (low) floor rather than faking linearity.
    strong_efficiency_floor: ClassVar[float] = 0.05
    weak_growth_ceiling: ClassVar[float] = 25.0

    def validate_spec(self, spec) -> None:
        """Reject specs whose work model this workload cannot run."""
        if not isinstance(spec.workmodel, self.workmodel_type):
            raise TypeError(
                f"workload {self.name!r} needs a "
                f"{self.workmodel_type.__name__} work model, got "
                f"{type(spec.workmodel).__name__}"
            )

    @abc.abstractmethod
    def default_workmodel(self, fig: str = "fig1"):
        """The canonical work model for one of the serving figure
        shapes (``fig1`` = Lenox-sized, ``fig3`` = MareNostrum4-sized)."""

    @abc.abstractmethod
    def build_app(self, spec, ctx, obs=None, faults=None):
        """The executable app for ``spec``: an object exposing
        ``rank_body(comm, ep)`` (and optionally returning a phase
        breakdown), ready for :class:`~repro.mpi.launcher.MpiJob`."""

    def nudge(self, work, i: int):
        """Variant ``i`` of ``work``: a distinct spec key at a cost
        difference too small to measure (the load-generator universes'
        knob).  Default: bump the model's cell count by ``i``."""
        if i < 0:
            raise ValueError("nudge index must be >= 0")
        return dataclasses.replace(work, n_cells=work.n_cells + i)


class PhasedWorkload(Workload):
    """A workload defined by its per-step phase program.

    Subclasses implement :meth:`phases`; :meth:`build_app` lowers the
    program through the shared :class:`PhasedApp`.
    """

    #: Neighbour layout for :class:`HaloPhase` ("grid" or "chain").
    topology: ClassVar[str] = "grid"

    @abc.abstractmethod
    def phases(self, work, ctx, n_endpoints: int, step: int) -> Sequence:
        """The step's phase tuple (pure and deterministic — see the
        module docstring's contract)."""

    def build_app(self, spec, ctx, obs=None, faults=None) -> "PhasedApp":
        return PhasedApp(
            self,
            spec.workmodel,
            ctx,
            sim_steps=spec.sim_steps,
            topology=self.topology,
            io_bandwidth=spec.cluster.shared_fs_bandwidth,
            obs=obs,
            faults=faults,
        )


# ---------------------------------------------------------------------------
# The shared lowering.
# ---------------------------------------------------------------------------


class PhasedApp:
    """Compiles a :class:`PhasedWorkload`'s phase program to the DES.

    Mirrors :class:`~repro.alya.app.SimulatedAlya`'s lowering one
    construct at a time: compute becomes a (straggler-scaled) timeout,
    halos become joined non-blocking neighbour exchanges, collectives
    dispatch to :mod:`repro.mpi.collectives`, IO becomes a bandwidth
    delay; each phase marks an obs span named after itself.
    """

    def __init__(
        self,
        workload: PhasedWorkload,
        work,
        ctx,
        sim_steps: int = 2,
        topology: str = "grid",
        io_bandwidth: float = 1e9,
        obs=None,
        faults=None,
    ) -> None:
        if sim_steps < 1:
            raise ValueError("sim_steps must be >= 1")
        if topology not in ("grid", "chain"):
            raise ValueError("topology must be 'grid' or 'chain'")
        if io_bandwidth <= 0:
            raise ValueError("io_bandwidth must be positive")
        self.workload = workload
        self.work = work
        self.ctx = ctx
        self.sim_steps = sim_steps
        self.topology = topology
        self.io_bandwidth = io_bandwidth
        self.obs = obs
        self.faults = faults
        # Phase programs are pure in (work, ctx, n_endpoints, step);
        # memoise per (n_endpoints, step) so p endpoints share one
        # program object instead of recomputing it p times.
        self._memo: dict = {}

    def _phases_for(self, n_endpoints: int, step: int):
        key = (n_endpoints, step)
        prog = self._memo.get(key)
        if prog is None:
            prog = tuple(
                self.workload.phases(self.work, self.ctx, n_endpoints, step)
            )
            ops = [
                p.op for p in prog if isinstance(p, (HaloPhase, CollectivePhase))
            ]
            if len(ops) != len(set(ops)):
                raise ValueError(
                    f"workload {self.workload.name!r} emitted duplicate op "
                    f"offsets in step {step}: {sorted(ops)}"
                )
            self._memo[key] = prog
        return prog

    def _halo(self, comm: SimComm, ep: int, op: int, nbytes: float):
        """All non-blocking halo sends/receives for one phase."""
        events = []
        for nb, axis in grid_neighbors(
            comm.rankmap, ep, self.ctx.endpoint_is_node, self.topology
        ):
            send_round = axis * 2 + (0 if nb < ep else 1)
            recv_round = axis * 2 + (0 if ep < nb else 1)
            events.append(
                comm.isend(ep, nb, collective_tag(op, send_round), nbytes)
            )
            events.append(comm.recv(ep, nb, collective_tag(op, recv_round)))
        return events

    def rank_body(self, comm: SimComm, ep: int):
        """Generator executed by endpoint ``ep``."""
        env = comm.env
        breakdown = PhaseBreakdown()
        obs = self.obs
        faults = self.faults
        ep_node = comm.rankmap.node_of(ep) if faults is not None else 0
        track = f"ep-{ep}"

        def mark(name: str, t0: float, step: int) -> None:
            if obs is not None and env.now > t0:
                obs.add_span(name, "solver", t0, env.now, track=track,
                             step=step)

        for step in range(self.sim_steps):
            base = step * OPS_PER_STEP
            step_t0 = env.now
            for phase in self._phases_for(comm.size, step):
                t = env.now
                if isinstance(phase, ComputePhase):
                    dt = phase.seconds
                    if faults is not None:
                        dt *= faults.cpu_factor(ep_node, env.now)
                    if dt > 0:
                        yield env.timeout(dt)
                elif isinstance(phase, HaloPhase):
                    pending = self._halo(
                        comm, ep, base + phase.op, phase.nbytes
                    )
                    if pending:
                        yield JoinAll(env, pending)
                elif isinstance(phase, CollectivePhase):
                    op = base + phase.op
                    if phase.kind == "allreduce":
                        yield from collectives.allreduce(
                            comm, ep, op=op, nbytes=phase.nbytes
                        )
                    elif phase.kind == "allgather":
                        yield from collectives.allgather(
                            comm, ep, op=op, nbytes_per_rank=phase.nbytes
                        )
                    elif phase.kind == "gather":
                        yield from collectives.gather(
                            comm, ep, op=op, nbytes_per_rank=phase.nbytes,
                            root=phase.root,
                        )
                    else:  # bcast
                        yield from collectives.bcast(
                            comm, ep, op=op, nbytes=phase.nbytes,
                            root=phase.root,
                        )
                elif isinstance(phase, IOPhase):
                    dt = phase.nbytes / self.io_bandwidth
                    if dt > 0:
                        yield env.timeout(dt)
                else:
                    raise TypeError(
                        f"workload {self.workload.name!r} emitted an "
                        f"unknown phase {phase!r}"
                    )
                breakdown.add(_BUCKET[type(phase)], env.now - t)
                mark(phase.name, t, step)
            mark("step", step_t0, step)
        return breakdown

    def body(self):
        """The SPMD entry point for :class:`~repro.mpi.launcher.MpiJob`."""
        return self.rank_body
