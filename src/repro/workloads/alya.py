"""Alya ported onto the workload registry.

The port is deliberately thin: :meth:`AlyaWorkload.build_app` hands the
spec's :class:`~repro.alya.workmodel.AlyaWorkModel` straight to
:class:`~repro.alya.app.SimulatedAlya`, the hand-written lowering every
golden trace digest and study CSV was recorded against.  Routing Alya
through the registry must be byte-identical to the pre-registry path —
the phase interface (:mod:`repro.workloads.base`) *mirrors* that
lowering for new workloads rather than re-implementing Alya on top of
it, precisely so this guarantee is structural instead of numeric.
"""

from __future__ import annotations

from repro.alya.app import SimulatedAlya
from repro.alya.workmodel import AlyaWorkModel
from repro.core import calibration
from repro.workloads.base import Workload


class AlyaWorkload(Workload):
    """The paper's production biological simulation (CFD / FSI)."""

    name = "alya"
    workmodel_type = AlyaWorkModel
    description = (
        "Alya artery CFD/FSI: predictor halo + CG halo/allreduce "
        "iterations, optional FSI coupling (the paper's cases)"
    )
    # Measured on the Lenox 1/2/4-node reference grid: the CG loop is
    # halo/allreduce-bound at the fig-1 mesh, so efficiency collapses
    # once traffic leaves the node (the paper's Lenox runs use larger
    # per-node shares).
    strong_efficiency_floor = 0.03
    weak_growth_ceiling = 30.0

    def default_workmodel(self, fig: str = "fig1") -> AlyaWorkModel:
        if fig == "fig1":
            return calibration.lenox_cfd_workmodel()
        if fig == "fig3":
            return calibration.mn4_fsi_workmodel()
        raise ValueError(f"unknown figure shape {fig!r} (fig1|fig3)")

    def build_app(self, spec, ctx, obs=None, faults=None) -> SimulatedAlya:
        return SimulatedAlya(
            spec.workmodel,
            ctx,
            sim_steps=spec.sim_steps,
            obs=obs,
            faults=faults,
        )
