"""Executable 2-D incompressible Navier–Stokes solver (Chorin projection).

The miniature of Alya's artery CFD case: blood flows through the channel
of a :class:`~repro.alya.mesh.StructuredMesh` under a parabolic inflow.
Each :meth:`ChannelFlowSolver.step` performs

1. an explicit advection–diffusion predictor (upwind + 5-point Laplacian),
2. a pressure Poisson solve by matrix-free conjugate gradients
   (Neumann walls/inflow, Dirichlet ``p = 0`` outflow), and
3. the projection correction, restoring a discretely divergence-free
   velocity field.

The solver is instrumented: CG iteration counts, post-projection
divergence norms and a flop estimate are recorded per step — these
measured numbers parameterise :class:`~repro.alya.workmodel.AlyaWorkModel`
so the cluster simulation runs the *same* workload shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.alya import kernels as K
from repro.alya.mesh import StructuredMesh

#: Blood-like defaults (SI): kinematic viscosity, density.
BLOOD_KINEMATIC_VISCOSITY = 3.3e-6
BLOOD_DENSITY = 1060.0


@dataclass
class SolverStats:
    """Per-run instrumentation."""

    steps: int = 0
    cg_iterations: list[int] = field(default_factory=list)
    divergence_norms: list[float] = field(default_factory=list)
    flops: float = 0.0

    @property
    def mean_cg_iterations(self) -> float:
        """Average CG iterations per time step (the work-model input)."""
        return float(np.mean(self.cg_iterations)) if self.cg_iterations else 0.0


class ChannelFlowSolver:
    """Incompressible flow in the artery channel.

    Parameters
    ----------
    mesh:
        Discretised vessel.
    u_max:
        Centreline inflow velocity (m/s).
    viscosity / density:
        Fluid properties (blood by default).
    cfl:
        Safety factor for the explicit time step.
    cg_tol / cg_max_iter:
        Pressure-solver controls.
    """

    def __init__(
        self,
        mesh: StructuredMesh,
        u_max: float = 0.4,
        viscosity: float = BLOOD_KINEMATIC_VISCOSITY,
        density: float = BLOOD_DENSITY,
        cfl: float = 0.2,
        cg_tol: float = 1e-8,
        cg_max_iter: int = 2000,
        ramp_time: float = 0.0,
        pulse_frequency: float = 0.0,
        pulse_amplitude: float = 0.0,
    ) -> None:
        if u_max <= 0:
            raise ValueError("u_max must be positive")
        if viscosity <= 0 or density <= 0:
            raise ValueError("viscosity and density must be positive")
        self.mesh = mesh
        self.u_max = float(u_max)
        self.nu = float(viscosity)
        self.rho = float(density)
        self.cg_tol = float(cg_tol)
        self.cg_max_iter = int(cg_max_iter)
        #: Inflow ramp-up period (s); avoids the impulsive-start pressure
        #: transient that would kick a coupled wall (0 = full flow at once).
        self.ramp_time = float(ramp_time)
        #: Pulsatile inflow (cardiac cycle): the profile is modulated by
        #: ``1 + A sin(2 pi f t)``.  f = 0 gives steady flow.
        if pulse_frequency < 0:
            raise ValueError("pulse_frequency must be >= 0")
        if not 0.0 <= pulse_amplitude < 1.0:
            raise ValueError("pulse_amplitude must be in [0, 1)")
        self.pulse_frequency = float(pulse_frequency)
        self.pulse_amplitude = float(pulse_amplitude)
        self.time = 0.0

        ny, nx = mesh.ny, mesh.nx
        self.u = K.alloc_field(ny, nx)
        self.v = K.alloc_field(ny, nx)
        self.p = K.alloc_field(ny, nx)
        self._inflow = mesh.geometry.inflow_profile(mesh.y_centers, u_max)
        self._mask = mesh.fluid_mask  # (ny, nx) True = fluid
        #: Wall-normal transpiration velocities (FSI hook), shape (nx,).
        self.wall_velocity_top = np.zeros(nx)
        self.wall_velocity_bottom = np.zeros(nx)

        dx, dy = mesh.dx, mesh.dy
        dt_adv = cfl * min(dx, dy) / u_max
        dt_diff = cfl * 0.5 * min(dx, dy) ** 2 / self.nu
        self.dt = min(dt_adv, dt_diff)
        self.stats = SolverStats()

    # -- boundary conditions -------------------------------------------------
    def _ramp(self) -> float:
        """Inflow scale factor: smooth ramp times the cardiac pulse."""
        if self.ramp_time <= 0 or self.time >= self.ramp_time:
            scale = 1.0
        else:
            scale = 0.5 * (1.0 - np.cos(np.pi * self.time / self.ramp_time))
        if self.pulse_frequency > 0:
            scale *= 1.0 + self.pulse_amplitude * np.sin(
                2.0 * np.pi * self.pulse_frequency * self.time
            )
        return scale

    def _apply_velocity_bcs(self, u: np.ndarray, v: np.ndarray) -> None:
        # Inflow (left): parabolic profile (possibly ramped), v = 0.
        u[1:-1, 0] = 2.0 * self._ramp() * self._inflow - u[1:-1, 1]
        v[1:-1, 0] = -v[1:-1, 1]
        # Outflow (right): zero gradient.
        u[1:-1, -1] = u[1:-1, -2]
        v[1:-1, -1] = v[1:-1, -2]
        # Walls: no-slip for u, transpiration (FSI) for v.
        u[0, :] = -u[1, :]
        u[-1, :] = -u[-2, :]
        v[0, 1:-1] = 2.0 * self.wall_velocity_bottom - v[1, 1:-1]
        v[-1, 1:-1] = 2.0 * self.wall_velocity_top - v[-2, 1:-1]
        # Solid (stenosis) cells: zero velocity.
        u[1:-1, 1:-1][~self._mask] = 0.0
        v[1:-1, 1:-1][~self._mask] = 0.0

    def _apply_pressure_ghosts(self, p: np.ndarray) -> None:
        p[1:-1, 0] = p[1:-1, 1]  # Neumann at inflow
        p[1:-1, -1] = -p[1:-1, -2]  # Dirichlet 0 at outflow face
        p[0, :] = p[1, :]  # Neumann at walls
        p[-1, :] = p[-2, :]

    # -- pressure solve ------------------------------------------------------
    def _neg_laplacian(self, x_int: np.ndarray) -> np.ndarray:
        """SPD operator: -∇² with the pressure BCs, acting on interiors."""
        ny, nx = self.mesh.ny, self.mesh.nx
        buf = K.alloc_field(ny, nx)
        buf[1:-1, 1:-1] = x_int
        self._apply_pressure_ghosts(buf)
        return -K.laplacian(buf, self.mesh.dx, self.mesh.dy)

    def solve_pressure(self, rhs: np.ndarray) -> tuple[np.ndarray, int]:
        """Matrix-free CG for ``-∇²p = -rhs``; returns (p interior, iters)."""
        n = rhs.size
        x = self.p[1:-1, 1:-1].copy()  # warm start from the previous step
        r = -rhs - self._neg_laplacian(x)
        d = r.copy()
        rs = float(np.vdot(r, r))
        b_norm = float(np.sqrt(np.vdot(rhs, rhs))) or 1.0
        iters = 0
        while np.sqrt(rs) > self.cg_tol * b_norm and iters < self.cg_max_iter:
            q = self._neg_laplacian(d)
            alpha = rs / float(np.vdot(d, q))
            x += alpha * d
            r -= alpha * q
            rs_new = float(np.vdot(r, r))
            d = r + (rs_new / rs) * d
            rs = rs_new
            iters += 1
        self.stats.flops += iters * n * (
            K.FLOPS_LAPLACIAN + 3 * K.FLOPS_AXPY + 2 * K.FLOPS_DOT
        )
        return x, iters

    # -- time stepping ----------------------------------------------------------
    def step(self) -> None:
        """Advance one time step."""
        mesh = self.mesh
        dx, dy, dt = mesh.dx, mesh.dy, self.dt
        n = mesh.n_cells

        self._apply_velocity_bcs(self.u, self.v)

        # Predictor: explicit advection + diffusion.
        adv_u = K.upwind_advect(self.u, self.v, self.u, dx, dy)
        adv_v = K.upwind_advect(self.u, self.v, self.v, dx, dy)
        lap_u = K.laplacian(self.u, dx, dy)
        lap_v = K.laplacian(self.v, dx, dy)
        u_star = self.u.copy()
        v_star = self.v.copy()
        u_star[1:-1, 1:-1] += dt * (self.nu * lap_u - adv_u)
        v_star[1:-1, 1:-1] += dt * (self.nu * lap_v - adv_v)
        self._apply_velocity_bcs(u_star, v_star)
        self.stats.flops += n * (
            2 * K.FLOPS_UPWIND_ADVECT + 2 * K.FLOPS_LAPLACIAN + 8
        )

        # Poisson solve for the pressure correction.
        rhs = (self.rho / dt) * K.divergence(u_star, v_star, dx, dy)
        p_int, iters = self.solve_pressure(rhs)
        self.p[1:-1, 1:-1] = p_int
        self._apply_pressure_ghosts(self.p)
        self.stats.flops += n * K.FLOPS_DIVERGENCE

        # Projection.
        dpdx, dpdy = K.gradient(self.p, dx, dy)
        self.u[1:-1, 1:-1] = u_star[1:-1, 1:-1] - (dt / self.rho) * dpdx
        self.v[1:-1, 1:-1] = v_star[1:-1, 1:-1] - (dt / self.rho) * dpdy
        self._apply_velocity_bcs(self.u, self.v)
        self.stats.flops += n * (2 * K.FLOPS_GRADIENT + 4)

        div = K.divergence(self.u, self.v, dx, dy)
        self.stats.divergence_norms.append(
            float(np.sqrt(np.mean(div[self._mask] ** 2)))
        )
        self.stats.cg_iterations.append(iters)
        self.stats.steps += 1
        self.time += dt

    def run(self, n_steps: int) -> SolverStats:
        """Advance ``n_steps`` steps and return the accumulated stats."""
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        for _ in range(n_steps):
            self.step()
        return self.stats

    # -- FSI hooks ------------------------------------------------------------
    def wall_pressure_top(self) -> np.ndarray:
        """Pressure at the top-wall cell row, shape (nx,)."""
        return self.p[-2, 1:-1].copy()

    def wall_pressure_bottom(self) -> np.ndarray:
        """Pressure at the bottom-wall cell row, shape (nx,)."""
        return self.p[1, 1:-1].copy()

    def set_wall_motion(
        self, top: np.ndarray | None = None, bottom: np.ndarray | None = None
    ) -> None:
        """Impose transpiration velocities on the walls (m/s)."""
        if top is not None:
            if top.shape != (self.mesh.nx,):
                raise ValueError(f"top must have shape ({self.mesh.nx},)")
            self.wall_velocity_top = top.astype(float)
        if bottom is not None:
            if bottom.shape != (self.mesh.nx,):
                raise ValueError(f"bottom must have shape ({self.mesh.nx},)")
            self.wall_velocity_bottom = bottom.astype(float)

    # -- diagnostics -------------------------------------------------------------
    def centerline_velocity(self) -> np.ndarray:
        """u along the channel centreline, shape (nx,)."""
        return self.u[self.mesh.ny // 2 + 1, 1:-1].copy()

    def flow_rate(self, column: int) -> float:
        """Volumetric flow (per unit depth) through an axial column."""
        if not 0 <= column < self.mesh.nx:
            raise ValueError("column out of range")
        return float(self.u[1:-1, column + 1].sum() * self.mesh.dy)
