"""Artery geometry: a 2-D channel with an optional stenosis.

The paper's CFD case is blood flow through an artery.  The miniature uses
a planar channel of length ``length`` and (half-)width ``radius``; an
optional cosine-bump stenosis narrows the lumen, which is what makes the
flow field non-trivial (acceleration through the throat, recirculation
behind it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ArteryGeometry:
    """Geometric description of the vessel.

    Attributes
    ----------
    length:
        Vessel length (m).
    radius:
        Undeformed lumen half-width (m).
    stenosis_severity:
        Fractional lumen reduction at the throat, in [0, 0.9]; 0 = none.
    stenosis_center / stenosis_length:
        Axial position and extent of the narrowing (m).
    """

    length: float = 0.1
    radius: float = 0.005
    stenosis_severity: float = 0.0
    stenosis_center: float = 0.05
    stenosis_length: float = 0.02

    def __post_init__(self) -> None:
        if self.length <= 0 or self.radius <= 0:
            raise ValueError("length and radius must be positive")
        if not 0.0 <= self.stenosis_severity <= 0.9:
            raise ValueError("stenosis_severity must be in [0, 0.9]")
        if self.stenosis_length <= 0:
            raise ValueError("stenosis_length must be positive")

    def lumen_halfwidth(self, x: np.ndarray) -> np.ndarray:
        """Local half-width of the vessel at axial positions ``x``."""
        x = np.asarray(x, dtype=float)
        h = np.full_like(x, self.radius)
        if self.stenosis_severity > 0:
            s = (x - self.stenosis_center) / (self.stenosis_length / 2.0)
            bump = np.where(
                np.abs(s) <= 1.0,
                0.5 * (1.0 + np.cos(np.pi * s)),
                0.0,
            )
            h = h * (1.0 - self.stenosis_severity * bump)
        return h

    def throat_halfwidth(self) -> float:
        """Smallest lumen half-width."""
        return self.radius * (1.0 - self.stenosis_severity)

    def inflow_profile(self, y: np.ndarray, u_max: float) -> np.ndarray:
        """Parabolic (Poiseuille) inflow profile over ``y`` in [0, 2*radius].

        Zero at both walls, ``u_max`` on the centreline.
        """
        y = np.asarray(y, dtype=float)
        r = self.radius
        return np.clip(u_max * (1.0 - ((y - r) / r) ** 2), 0.0, None)
