"""Partitioned fluid–structure coupling: the paper's FSI use case.

The paper runs "two instances of different codes: the first code studying
the fluid sub-domain and the second one simulating the solid sub-domain".
This miniature mirrors that structure: a :class:`ChannelFlowSolver`
(fluid code) and two :class:`ElasticWall` instances (solid code) advance
in a loosely coupled Dirichlet–Neumann scheme:

1. fluid step → wall pressure loads;
2. solid step under those loads → wall velocities;
3. the wall velocities re-enter the fluid as transpiration boundary
   conditions for the next step (optionally with sub-iterations and
   Aitken-style relaxation for stronger coupling).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.alya.mesh import StructuredMesh
from repro.alya.navier_stokes import ChannelFlowSolver
from repro.alya.solid import ElasticWall


@dataclass
class FsiStats:
    """Coupled-run instrumentation."""

    steps: int = 0
    coupling_iterations: list[int] = field(default_factory=list)
    interface_residuals: list[float] = field(default_factory=list)
    max_displacement: float = 0.0


class FsiCoupledSolver:
    """Fluid + elastic walls, loosely coupled.

    Parameters
    ----------
    mesh:
        The fluid mesh (the walls sample its axial columns).
    u_max:
        Inflow centreline velocity.
    subiterations:
        Coupling sub-iterations per time step (1 = explicit coupling).
    relaxation:
        Fixed relaxation factor on the interface velocity update.
    wall_kwargs:
        Forwarded to both :class:`ElasticWall` instances.
    """

    def __init__(
        self,
        mesh: StructuredMesh,
        u_max: float = 0.4,
        subiterations: int = 1,
        relaxation: float = 0.02,
        load_smoothing: float = 0.15,
        ramp_steps: int = 40,
        transpiration_cap: float = 0.02,
        **wall_kwargs,
    ) -> None:
        if subiterations < 1:
            raise ValueError("subiterations must be >= 1")
        if not 0 < relaxation <= 1:
            raise ValueError("relaxation must be in (0, 1]")
        if not 0 < load_smoothing <= 1:
            raise ValueError("load_smoothing must be in (0, 1]")
        if transpiration_cap <= 0:
            raise ValueError("transpiration_cap must be positive")
        self.fluid = ChannelFlowSolver(mesh, u_max=u_max)
        # Ramp the inflow over the first coupling steps: impulsive starts
        # kick the wall with a non-physical pressure spike.
        self.fluid.ramp_time = ramp_steps * self.fluid.dt
        self.wall_top = ElasticWall(mesh.nx, **wall_kwargs)
        self.wall_bottom = ElasticWall(mesh.nx, **wall_kwargs)
        self.subiterations = subiterations
        self.relaxation = relaxation
        self.load_smoothing = load_smoothing
        # Arterial wall velocities are mm/s-scale; bounding the
        # transpiration BC at a small fraction of the inflow keeps the
        # explicit (added-mass-unstable) coupling saturated instead of
        # divergent, and is inactive once the wall reaches equilibrium.
        self.transpiration_cap = transpiration_cap * u_max
        self._load_top = np.zeros(mesh.nx)
        self._load_bottom = np.zeros(mesh.nx)
        self.stats = FsiStats()

    @property
    def dt(self) -> float:
        """Coupling time step (the fluid's stable step)."""
        return self.fluid.dt

    def step(self) -> None:
        """One coupled time step."""
        fl = self.fluid
        w_top, w_bot = self.wall_top, self.wall_bottom
        prev_top = fl.wall_velocity_top.copy()
        prev_bot = fl.wall_velocity_bottom.copy()

        iters_done = 0
        residual = np.inf
        for _ in range(self.subiterations):
            fl.step()
            # Fluid → solid: transmural pressure loads (η positive =
            # outward for both walls), low-pass filtered — the wall
            # responds to the flow, not to the pressure solver's
            # step-to-step chatter.
            a = self.load_smoothing
            self._load_top = (1 - a) * self._load_top + a * fl.wall_pressure_top()
            self._load_bottom = (
                (1 - a) * self._load_bottom + a * fl.wall_pressure_bottom()
            )
            vel_top = w_top.step(self._load_top, fl.dt)
            vel_bot = w_bot.step(self._load_bottom, fl.dt)
            # Solid → fluid: relaxed transpiration velocities.  Outward is
            # +y at the top wall and -y at the bottom wall.
            new_top = (
                self.relaxation * vel_top + (1 - self.relaxation) * prev_top
            )
            new_bot = (
                -self.relaxation * vel_bot + (1 - self.relaxation) * prev_bot
            )
            cap = self.transpiration_cap
            new_top = np.clip(new_top, -cap, cap)
            new_bot = np.clip(new_bot, -cap, cap)
            residual = float(
                np.max(np.abs(new_top - prev_top))
                + np.max(np.abs(new_bot - prev_bot))
            )
            fl.set_wall_motion(top=new_top, bottom=new_bot)
            prev_top, prev_bot = new_top, new_bot
            iters_done += 1

        self.stats.steps += 1
        self.stats.coupling_iterations.append(iters_done)
        self.stats.interface_residuals.append(residual)
        self.stats.max_displacement = max(
            self.stats.max_displacement,
            float(np.max(np.abs(w_top.displacement))),
            float(np.max(np.abs(w_bot.displacement))),
        )

    def run(self, n_steps: int) -> FsiStats:
        """Advance ``n_steps`` coupled steps."""
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        for _ in range(n_steps):
            self.step()
        return self.stats
