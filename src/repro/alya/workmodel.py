"""Work model: what one Alya time step costs, per subdomain.

The executable mini-solver runs a 2-D problem at laptop scale; the paper's
runs use three-dimensional arterial meshes with up to tens of millions of
elements.  The work model carries the *shape* of the workload across that
gap:

- flops per cell per step, split into the predictor/projection part and
  the per-CG-iteration part — measured from
  :class:`~repro.alya.navier_stokes.ChannelFlowSolver` instrumentation;
- CG iterations per step (measured likewise);
- halo sizes from 3-D surface-to-volume scaling,
  ``halo_cells ≈ c · (cells_per_part)^(2/3)``;
- for FSI, the solid sub-problem's size and the interface traffic between
  the two codes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.alya.mesh import StructuredMesh
from repro.alya.navier_stokes import SolverStats


class CaseKind(enum.Enum):
    """The paper's two biological use cases."""

    CFD = "cfd"
    FSI = "fsi"


#: Per-cell flop costs of one step of the projection scheme, matching the
#: instrumentation constants of :mod:`repro.alya.kernels`.
PREDICTOR_FLOPS_PER_CELL = 52.0
CG_FLOPS_PER_CELL_ITER = 16.0


@dataclass(frozen=True)
class AlyaWorkModel:
    """Per-step cost description of one Alya case.

    Attributes
    ----------
    case:
        CFD or FSI.
    n_cells:
        Global mesh cells.
    flops_per_cell_step:
        Flops per cell outside the pressure solver.
    flops_per_cell_cg_iter:
        Flops per cell per CG iteration.
    cg_iters_per_step:
        Pressure-solver iterations per time step.
    halo_surface_coeff:
        ``halo_cells = coeff * cells_per_part^(2/3)`` (3-D partition).
    halo_fields_main / halo_fields_cg:
        Fields exchanged in the predictor halo / per CG iteration.
    bytes_per_value:
        8 for double precision.
    nominal_timesteps:
        Steps of the production run (simulated runs do a few steps and
        scale; see :class:`~repro.core.metrics`).
    solid_flops_per_step:
        FSI only: the solid code's flops per coupling step.
    interface_cells:
        FSI only: wet-surface cells exchanged between the codes.
    """

    case: CaseKind
    n_cells: int
    flops_per_cell_step: float = PREDICTOR_FLOPS_PER_CELL
    flops_per_cell_cg_iter: float = CG_FLOPS_PER_CELL_ITER
    cg_iters_per_step: int = 25
    halo_surface_coeff: float = 2.0
    halo_fields_main: int = 2
    halo_fields_cg: int = 1
    bytes_per_value: float = 8.0
    #: Resident bytes per mesh cell (fields, matrices, halos, mesh data —
    #: the unstructured-CFD working-set class).
    memory_bytes_per_cell: float = 200.0
    nominal_timesteps: int = 600
    solid_flops_per_step: float = 0.0
    interface_cells: int = 0

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise ValueError("n_cells must be >= 1")
        if self.cg_iters_per_step < 1:
            raise ValueError("cg_iters_per_step must be >= 1")
        if self.flops_per_cell_step <= 0 or self.flops_per_cell_cg_iter <= 0:
            raise ValueError("flop costs must be positive")
        if self.halo_surface_coeff <= 0:
            raise ValueError("halo_surface_coeff must be positive")
        if self.nominal_timesteps < 1:
            raise ValueError("nominal_timesteps must be >= 1")
        if self.case is CaseKind.FSI:
            if self.solid_flops_per_step <= 0 or self.interface_cells < 1:
                raise ValueError(
                    "an FSI model needs solid_flops_per_step and "
                    "interface_cells"
                )
        elif self.solid_flops_per_step != 0.0 or self.interface_cells != 0:
            # The inverse check: a CFD model carrying coupling parameters
            # is a mislabelled case, not a cheaper FSI — the solid cost
            # would be silently dropped by the CFD lowering.
            raise ValueError(
                "a CFD model must not carry FSI parameters (got "
                f"solid_flops_per_step={self.solid_flops_per_step}, "
                f"interface_cells={self.interface_cells}); "
                "use case=CaseKind.FSI for a coupled run"
            )

    # -- per-partition quantities ------------------------------------------------
    def cells_per_part(self, n_parts: int, imbalance: float = 1.05) -> float:
        """Cells of the *largest* subdomain (imbalance folded in)."""
        if n_parts < 1:
            raise ValueError("n_parts must be >= 1")
        if imbalance < 1.0:
            raise ValueError("imbalance must be >= 1")
        return self.n_cells / n_parts * imbalance

    def halo_cells(self, n_parts: int) -> float:
        """Interface cells per neighbour for one subdomain."""
        return self.halo_surface_coeff * self.cells_per_part(n_parts) ** (2.0 / 3.0)

    def step_flops_per_part(self, n_parts: int) -> float:
        """All flops of one step for the largest subdomain."""
        per_cell = (
            self.flops_per_cell_step
            + self.cg_iters_per_step * self.flops_per_cell_cg_iter
        )
        return per_cell * self.cells_per_part(n_parts)

    def halo_bytes_main(self, n_parts: int) -> float:
        """Bytes of one predictor halo exchange, per neighbour."""
        return self.halo_cells(n_parts) * self.halo_fields_main * self.bytes_per_value

    def halo_bytes_cg(self, n_parts: int) -> float:
        """Bytes of one CG-iteration halo exchange, per neighbour."""
        return self.halo_cells(n_parts) * self.halo_fields_cg * self.bytes_per_value

    def interface_bytes(self) -> float:
        """FSI: bytes of one interface exchange (pressure or displacement)."""
        return self.interface_cells * self.bytes_per_value

    def memory_per_node(self, n_nodes: int) -> float:
        """Resident bytes one node needs for its share of the mesh."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return self.n_cells / n_nodes * self.memory_bytes_per_cell * 1.05

    # -- construction --------------------------------------------------------------
    @classmethod
    def measured_from(
        cls,
        mesh: StructuredMesh,
        stats: SolverStats,
        case: CaseKind = CaseKind.CFD,
        nominal_timesteps: int = 600,
        scale_cells: Optional[int] = None,
        **overrides,
    ) -> "AlyaWorkModel":
        """Build a model from an instrumented mini-solver run.

        ``scale_cells`` re-targets the measured per-cell behaviour to a
        production-size mesh (the 2-D miniature's CG iteration counts and
        per-cell flops carry over; the cell count does not).
        """
        if stats.steps < 1:
            raise ValueError("stats must cover at least one step")
        n_cells = scale_cells if scale_cells is not None else mesh.n_fluid_cells
        flops_per_cell = stats.flops / stats.steps / mesh.n_cells
        cg = max(1, round(stats.mean_cg_iterations))
        cg_part = cg * CG_FLOPS_PER_CELL_ITER
        kwargs = dict(
            case=case,
            n_cells=n_cells,
            flops_per_cell_step=max(flops_per_cell - cg_part, 1.0),
            flops_per_cell_cg_iter=CG_FLOPS_PER_CELL_ITER,
            cg_iters_per_step=cg,
            nominal_timesteps=nominal_timesteps,
        )
        if case is CaseKind.FSI:
            kwargs.setdefault("solid_flops_per_step", 8.0 * mesh.nx * 100)
            kwargs.setdefault("interface_cells", mesh.nx)
        kwargs.update(overrides)
        return cls(**kwargs)
