"""The Alya-like workload.

Alya itself is a proprietary production code; per the reproduction's
substitution rule this subpackage provides (a) a genuinely *executable*
miniature of the two use cases the paper runs — a 2-D incompressible
Navier–Stokes solver on an artery-like channel (CFD) and a partitioned
fluid–structure coupling with an elastic wall (FSI) — and (b) a *work
model* that turns a mesh and a partitioning into the per-step flops,
halo bytes and collective counts that drive the cluster simulation.

The executable solver keeps the workload honest: the work model's
constants (CG iteration counts, flops per cell) are measured from it, not
invented.
"""

from repro.alya.geometry import ArteryGeometry
from repro.alya.mesh import StructuredMesh
from repro.alya.partition import slab_partition, PartitionInfo
from repro.alya.navier_stokes import ChannelFlowSolver, SolverStats
from repro.alya.solid import ElasticWall
from repro.alya.fsi import FsiCoupledSolver
from repro.alya.workmodel import AlyaWorkModel, CaseKind
from repro.alya.app import ComputeContext, SimulatedAlya, TwoCodeFsiAlya

__all__ = [
    "AlyaWorkModel",
    "ArteryGeometry",
    "CaseKind",
    "ChannelFlowSolver",
    "ComputeContext",
    "ElasticWall",
    "FsiCoupledSolver",
    "PartitionInfo",
    "SimulatedAlya",
    "SolverStats",
    "StructuredMesh",
    "TwoCodeFsiAlya",
    "slab_partition",
]
