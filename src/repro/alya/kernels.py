"""Vectorised finite-difference kernels.

All kernels operate on arrays carrying one ghost layer: shape
``(ny + 2, nx + 2)`` with the physical cells in ``[1:-1, 1:-1]``.  They
are pure NumPy (no Python loops), per the scientific-Python guidance this
reproduction follows; approximate flop costs per interior cell are
exported for the work model.
"""

from __future__ import annotations

import numpy as np

#: Approximate flops per interior cell for each kernel (adds + muls).
FLOPS_LAPLACIAN = 6.0
FLOPS_DIVERGENCE = 4.0
FLOPS_GRADIENT = 4.0
FLOPS_UPWIND_ADVECT = 14.0
FLOPS_AXPY = 2.0
FLOPS_DOT = 2.0


def interior(f: np.ndarray) -> np.ndarray:
    """View of the physical cells."""
    return f[1:-1, 1:-1]


def alloc_field(ny: int, nx: int) -> np.ndarray:
    """A zeroed field with ghost cells."""
    return np.zeros((ny + 2, nx + 2), dtype=np.float64)


def laplacian(f: np.ndarray, dx: float, dy: float) -> np.ndarray:
    """5-point Laplacian of the interior, using current ghost values."""
    return (
        (f[1:-1, 2:] - 2.0 * f[1:-1, 1:-1] + f[1:-1, :-2]) / dx**2
        + (f[2:, 1:-1] - 2.0 * f[1:-1, 1:-1] + f[:-2, 1:-1]) / dy**2
    )


def divergence(u: np.ndarray, v: np.ndarray, dx: float, dy: float) -> np.ndarray:
    """Central-difference divergence of (u, v) at interior cells."""
    return (u[1:-1, 2:] - u[1:-1, :-2]) / (2.0 * dx) + (
        v[2:, 1:-1] - v[:-2, 1:-1]
    ) / (2.0 * dy)


def gradient(p: np.ndarray, dx: float, dy: float) -> tuple[np.ndarray, np.ndarray]:
    """Central-difference gradient of p at interior cells."""
    dpdx = (p[1:-1, 2:] - p[1:-1, :-2]) / (2.0 * dx)
    dpdy = (p[2:, 1:-1] - p[:-2, 1:-1]) / (2.0 * dy)
    return dpdx, dpdy


def upwind_advect(
    u: np.ndarray, v: np.ndarray, f: np.ndarray, dx: float, dy: float
) -> np.ndarray:
    """First-order upwind advection term ``(u·∇)f`` at interior cells.

    Unconditionally diffusive, hence robust at the mini-app's resolutions.
    """
    uc = u[1:-1, 1:-1]
    vc = v[1:-1, 1:-1]
    dfdx_m = (f[1:-1, 1:-1] - f[1:-1, :-2]) / dx  # backward
    dfdx_p = (f[1:-1, 2:] - f[1:-1, 1:-1]) / dx  # forward
    dfdy_m = (f[1:-1, 1:-1] - f[:-2, 1:-1]) / dy
    dfdy_p = (f[2:, 1:-1] - f[1:-1, 1:-1]) / dy
    return (
        np.where(uc > 0, uc * dfdx_m, uc * dfdx_p)
        + np.where(vc > 0, vc * dfdy_m, vc * dfdy_p)
    )
