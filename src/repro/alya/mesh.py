"""Structured mesh over the artery geometry."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.alya.geometry import ArteryGeometry


@dataclass(frozen=True)
class StructuredMesh:
    """A uniform Cartesian grid covering the vessel's bounding box.

    Cells outside the lumen (inside a stenosis bump) are masked solid.

    Attributes
    ----------
    geometry:
        The vessel shape.
    nx / ny:
        Interior cells in the axial / transverse directions.
    """

    geometry: ArteryGeometry
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx < 4 or self.ny < 4:
            raise ValueError("mesh needs at least 4x4 cells")

    @property
    def dx(self) -> float:
        return self.geometry.length / self.nx

    @property
    def dy(self) -> float:
        return 2.0 * self.geometry.radius / self.ny

    @cached_property
    def x_centers(self) -> np.ndarray:
        """Axial coordinates of cell centres, shape (nx,)."""
        return (np.arange(self.nx) + 0.5) * self.dx

    @cached_property
    def y_centers(self) -> np.ndarray:
        """Transverse coordinates of cell centres, shape (ny,)."""
        return (np.arange(self.ny) + 0.5) * self.dy

    @cached_property
    def fluid_mask(self) -> np.ndarray:
        """Boolean (ny, nx): True where the cell is inside the lumen."""
        half = self.geometry.lumen_halfwidth(self.x_centers)  # (nx,)
        centre = self.geometry.radius
        yy = self.y_centers[:, None]  # (ny, 1)
        return np.abs(yy - centre) <= half[None, :]

    @property
    def n_cells(self) -> int:
        """Total grid cells (solid + fluid)."""
        return self.nx * self.ny

    @cached_property
    def n_fluid_cells(self) -> int:
        """Cells participating in the flow solve."""
        return int(self.fluid_mask.sum())

    def interface_cells_per_column(self) -> int:
        """Fluid cells in one axial column (halo size of a slab cut)."""
        return int(self.fluid_mask[:, self.nx // 2].sum())

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<StructuredMesh {self.nx}x{self.ny} "
            f"({self.n_fluid_cells} fluid cells)>"
        )
