"""Elastic arterial wall: the solid half of the FSI case.

An independent-ring model, the standard reduced model for arterial walls:
each axial station is a damped spring–mass ring driven by the local
transmural pressure,

    m η̈ + c η̇ + k η = p(x) − p_ext ,

with η the radial wall displacement.  Integrated semi-implicitly
(symplectic Euler), which is unconditionally stable for the damped
oscillator at the coupling time steps the fluid dictates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ElasticWall:
    """A deformable wall discretised at ``n_stations`` axial positions.

    Attributes
    ----------
    n_stations:
        Axial sample count (matches the fluid mesh's ``nx``).
    mass:
        Effective ring mass per unit area (kg/m²) — ρ_wall · thickness.
    stiffness:
        Ring stiffness per unit area (Pa/m) — E·h/R² for a thin vessel.
    damping:
        Viscous damping coefficient (Pa·s/m).
    external_pressure:
        Reference pressure outside the vessel (Pa).
    """

    n_stations: int
    mass: float = 0.6  # rho_wall (1100 kg/m3) x thickness (~0.55 mm)
    stiffness: float = 1.0e7  # E.h/R^2 with E ~ 0.5 MPa, h ~ 0.5 mm, R = 5 mm
    damping: float = 5.0e3
    external_pressure: float = 0.0

    def __post_init__(self) -> None:
        if self.n_stations < 1:
            raise ValueError("n_stations must be >= 1")
        if self.mass <= 0 or self.stiffness <= 0:
            raise ValueError("mass and stiffness must be positive")
        if self.damping < 0:
            raise ValueError("damping must be >= 0")
        self.displacement = np.zeros(self.n_stations)
        self.velocity = np.zeros(self.n_stations)
        self.steps = 0
        self.flops = 0.0

    def natural_frequency(self) -> float:
        """Undamped angular frequency sqrt(k/m) (rad/s)."""
        return float(np.sqrt(self.stiffness / self.mass))

    def step(self, pressure: np.ndarray, dt: float) -> np.ndarray:
        """Advance the wall under fluid ``pressure``; returns η̇ (m/s).

        Implicit (backward-Euler-type) update, unconditionally stable for
        the damped oscillator at any dt: solving

            v⁺ = v + dt (load − k η⁺ − c v⁺)/m,   η⁺ = η + dt v⁺

        for v⁺ gives the closed form below.
        """
        pressure = np.asarray(pressure, dtype=float)
        if pressure.shape != (self.n_stations,):
            raise ValueError(
                f"pressure must have shape ({self.n_stations},), got "
                f"{pressure.shape}"
            )
        if dt <= 0:
            raise ValueError("dt must be positive")
        load = pressure - self.external_pressure
        m, k, c = self.mass, self.stiffness, self.damping
        denom = 1.0 + dt * c / m + dt * dt * k / m
        self.velocity = (
            self.velocity + dt * (load - k * self.displacement) / m
        ) / denom
        self.displacement += dt * self.velocity
        self.steps += 1
        self.flops += 12.0 * self.n_stations
        return self.velocity.copy()

    def equilibrium_displacement(self, pressure: np.ndarray) -> np.ndarray:
        """Static solution η = (p − p_ext)/k (the check tests verify)."""
        return (np.asarray(pressure, dtype=float) - self.external_pressure) / (
            self.stiffness
        )

    def energy(self) -> float:
        """Total mechanical energy per unit area (J/m²)."""
        kinetic = 0.5 * self.mass * float(np.sum(self.velocity**2))
        elastic = 0.5 * self.stiffness * float(np.sum(self.displacement**2))
        return kinetic + elastic
