"""Analytic reference solutions used to validate the mini-solver.

Plane Poiseuille flow — the fully developed laminar profile in a 2-D
channel — has a closed form against which the CFD solver's developed
state is checked: parabolic velocity, a linear pressure drop, and a flow
rate of ``(2/3) u_max · H`` per unit depth.  The Womersley and Reynolds
numbers classify the regime (the solver's defaults sit in the laminar,
quasi-steady band appropriate for the model's assumptions).
"""

from __future__ import annotations

import numpy as np


def poiseuille_profile(y: np.ndarray, half_width: float, u_max: float) -> np.ndarray:
    """Fully developed velocity profile ``u(y)`` for a channel of
    half-width ``h`` centred at ``y = h`` (walls at 0 and 2h)."""
    y = np.asarray(y, dtype=float)
    if half_width <= 0:
        raise ValueError("half_width must be positive")
    return u_max * (1.0 - ((y - half_width) / half_width) ** 2)


def poiseuille_flow_rate(half_width: float, u_max: float) -> float:
    """Volumetric flow per unit depth: ``(2/3) u_max * 2h``."""
    if half_width <= 0:
        raise ValueError("half_width must be positive")
    return (2.0 / 3.0) * u_max * 2.0 * half_width


def poiseuille_pressure_gradient(
    half_width: float, u_max: float, viscosity: float, density: float
) -> float:
    """dp/dx sustaining the profile: ``-2 mu u_max / h^2`` (mu = rho nu)."""
    if half_width <= 0 or viscosity <= 0 or density <= 0:
        raise ValueError("parameters must be positive")
    mu = viscosity * density
    return -2.0 * mu * u_max / half_width**2


def reynolds_number(
    u_max: float, half_width: float, viscosity: float
) -> float:
    """Channel Reynolds number on the hydraulic diameter ``4h``."""
    if viscosity <= 0:
        raise ValueError("viscosity must be positive")
    return u_max * 4.0 * half_width / viscosity


def womersley_number(
    half_width: float, frequency_hz: float, viscosity: float
) -> float:
    """Womersley number ``alpha = h sqrt(omega / nu)`` for pulsatile flow."""
    if frequency_hz < 0 or viscosity <= 0:
        raise ValueError("invalid parameters")
    omega = 2.0 * np.pi * frequency_hz
    return half_width * np.sqrt(omega / viscosity)
