"""The simulated Alya application: work model → DES rank program.

:class:`SimulatedAlya` turns an :class:`~repro.alya.workmodel.AlyaWorkModel`
into the SPMD generator each simulated endpoint executes:

per time step —
  1. the step's compute as one delay (predictor + CG arithmetic, threaded
     through the OpenMP model, inflated by the runtime's CPU overhead);
  2. the predictor halo exchange with the endpoint's grid neighbours;
  3. ``cg_iters`` pressure-solver iterations, each a one-field halo
     exchange plus a 16-byte allreduce (the dot products);
  4. for FSI: gather of the wet-interface loads to the fluid root, the
     solid code's step there, and the broadcast of displacements back.

Endpoints can be MPI ranks (small jobs — Lenox) or whole nodes
(hierarchical mode for the 256-node runs); in node mode the intra-node
stage of each collective is folded in analytically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.alya.workmodel import AlyaWorkModel, CaseKind
from repro.des.events import JoinAll
from repro.hardware.network import SHM_LATENCY
from repro.mpi import collectives
from repro.mpi.comm import SimComm
from repro.mpi.datatypes import collective_tag
from repro.mpi.perf import SHM_SW_OVERHEAD
from repro.openmp.model import OpenMPModel

#: Op-id stride reserved for one simulated time step.
_OPS_PER_STEP = 2048
_OP_HALO_MAIN = 0
_OP_HALO_CG = 10  # + iteration
_OP_ALLREDUCE = 700  # + iteration
_OP_FSI_GATHER = 1900
_OP_FSI_BCAST = 1901


@dataclass(frozen=True)
class ComputeContext:
    """How fast an endpoint computes.

    Attributes
    ----------
    core_peak_flops:
        Peak DP flop/s of one core.
    sustained_fraction:
        Fraction of peak a memory-bound CFD assembly sustains (~5%).
    omp:
        The within-rank threading model.
    threads_per_rank:
        OpenMP threads per MPI rank.
    cpu_overhead:
        Runtime multiplier (1.005 for Docker, 1.0 otherwise).
    endpoint_is_node:
        True when one simulated endpoint stands for a whole node.
    ranks_per_node:
        True MPI ranks per node (used to fold intra-node costs in node
        mode; ignored in rank mode).
    """

    core_peak_flops: float
    sustained_fraction: float = 0.05
    omp: OpenMPModel = OpenMPModel()
    threads_per_rank: int = 1
    cpu_overhead: float = 1.0
    endpoint_is_node: bool = False
    ranks_per_node: int = 1

    def __post_init__(self) -> None:
        if self.core_peak_flops <= 0:
            raise ValueError("core_peak_flops must be positive")
        if not 0 < self.sustained_fraction <= 1:
            raise ValueError("sustained_fraction must be in (0, 1]")
        if self.threads_per_rank < 1 or self.ranks_per_node < 1:
            raise ValueError("threads and ranks must be >= 1")
        if self.cpu_overhead < 1.0:
            raise ValueError("cpu_overhead must be >= 1")

    @property
    def sustained_core_flops(self) -> float:
        return self.core_peak_flops * self.sustained_fraction


@dataclass
class PhaseTimes:
    """Where one endpoint's wall time went, in seconds."""

    compute: float = 0.0
    halo: float = 0.0
    collective: float = 0.0
    coupling: float = 0.0

    @property
    def total(self) -> float:
        return self.compute + self.halo + self.collective + self.coupling

    def fractions(self) -> dict[str, float]:
        """Normalised shares per phase (empty dict if nothing measured)."""
        t = self.total
        if t <= 0:
            return {}
        return {
            "compute": self.compute / t,
            "halo": self.halo / t,
            "collective": self.collective / t,
            "coupling": self.coupling / t,
        }


class SimulatedAlya:
    """Executable model of one Alya job on the simulated cluster."""

    def __init__(
        self,
        work: AlyaWorkModel,
        ctx: ComputeContext,
        sim_steps: int = 3,
        topology: str = "grid",
        overlap_halo: bool = False,
        obs=None,
        faults=None,
    ) -> None:
        if sim_steps < 1:
            raise ValueError("sim_steps must be >= 1")
        if topology not in ("grid", "chain"):
            raise ValueError("topology must be 'grid' or 'chain'")
        self.work = work
        self.ctx = ctx
        self.sim_steps = sim_steps
        #: Optional :class:`repro.obs.span.Observability`: per-step solver
        #: phase spans on each endpoint's ``ep-{n}`` track.
        self.obs = obs
        #: Optional :class:`repro.faults.injector.FaultInjector`: each
        #: step's compute is scaled by the endpoint node's straggler
        #: factor at step start.  ``None`` is the exact nominal path.
        self.faults = faults
        #: Overlap the predictor halo with the step's compute
        #: (non-blocking exchange posted before the arithmetic, waited
        #: after) — the classic latency-hiding optimisation, exposed for
        #: the overlap ablation.
        self.overlap_halo = overlap_halo
        #: "grid" models a 3-D-ish decomposition (node x slot process
        #: grid); "chain" models the 1-D axial slab partition of an
        #: elongated vessel (each rank talks to at most 2 neighbours).
        self.topology = topology

    # -- cost helpers -------------------------------------------------------------
    def true_ranks(self, n_endpoints: int) -> int:
        """Actual MPI ranks the endpoints represent."""
        if self.ctx.endpoint_is_node:
            return n_endpoints * self.ctx.ranks_per_node
        return n_endpoints

    def compute_seconds_per_step(self, n_endpoints: int) -> float:
        """Wall seconds of one step's arithmetic on the slowest endpoint."""
        parts = self.true_ranks(n_endpoints)
        serial = self.work.step_flops_per_part(parts) / self.ctx.sustained_core_flops
        threaded = self.ctx.omp.threaded_time(serial, self.ctx.threads_per_rank)
        return threaded * self.ctx.cpu_overhead

    def solid_seconds_per_step(self, n_endpoints: int) -> float:
        """FSI: the solid code's step time.

        The paper's FSI case runs *two* parallel code instances; the solid
        is itself distributed over the allocation, so its step time
        strong-scales like the fluid's.  The residual serialisation of the
        coupling is the root-level gather/solid/broadcast sequence.
        """
        if self.work.case is not CaseKind.FSI:
            return 0.0
        serial = self.work.solid_flops_per_step / self.ctx.sustained_core_flops
        parallel = serial / self.true_ranks(n_endpoints)
        return parallel * self.ctx.cpu_overhead

    def _halo_parts(self, n_endpoints: int) -> int:
        """Partition count whose surfaces cross the network.

        In node mode only node-boundary surfaces travel inter-node, so
        halos scale with the *node* partition; in rank mode with the rank
        partition.
        """
        return n_endpoints

    def intra_collective_penalty(self) -> float:
        """Analytic intra-node stage of a collective (node mode only)."""
        if not self.ctx.endpoint_is_node or self.ctx.ranks_per_node <= 1:
            return 0.0
        rounds = math.ceil(math.log2(self.ctx.ranks_per_node))
        return rounds * (2 * SHM_SW_OVERHEAD + SHM_LATENCY)

    # -- neighbour layout -----------------------------------------------------------
    def neighbors(self, comm: SimComm, ep: int) -> list[tuple[int, int]]:
        """Grid neighbours of ``ep`` as ``(neighbor, axis)`` pairs.

        Endpoints form a (nodes × per-node) process grid: axis 0 connects
        consecutive endpoints on one node (shared memory), axis 1 connects
        the same slot on adjacent nodes (fabric).  In node mode the grid
        degenerates to a chain of nodes.
        """
        rm = comm.rankmap
        if self.topology == "chain":
            out: list[tuple[int, int]] = []
            if ep > 0:
                out.append((ep - 1, 0))
            if ep < rm.n_ranks - 1:
                out.append((ep + 1, 0))
            return out
        per_node = 1 if self.ctx.endpoint_is_node else rm.ranks_per_node
        node, j = divmod(ep, per_node) if per_node > 1 else (ep, 0)
        if self.ctx.endpoint_is_node:
            node, j = ep, 0
        out: list[tuple[int, int]] = []
        if per_node > 1:
            if j > 0:
                out.append((ep - 1, 0))
            if j < per_node - 1 and ep + 1 < rm.n_ranks:
                out.append((ep + 1, 0))
        n_nodes = rm.n_nodes
        if node > 0:
            out.append((ep - per_node, 1))
        if node < n_nodes - 1 and ep + per_node < rm.n_ranks:
            out.append((ep + per_node, 1))
        return out

    def _post_halo(self, comm: SimComm, ep: int, op: int, nbytes: float):
        """Post all non-blocking halo sends/receives; returns the events."""
        events = []
        for nb, axis in self.neighbors(comm, ep):
            send_round = axis * 2 + (0 if nb < ep else 1)
            recv_round = axis * 2 + (0 if ep < nb else 1)
            events.append(
                comm.isend(ep, nb, collective_tag(op, send_round), nbytes)
            )
            events.append(comm.recv(ep, nb, collective_tag(op, recv_round)))
        return events

    def _halo_exchange(self, comm: SimComm, ep: int, op: int, nbytes: float):
        """Concurrent sendrecv with every neighbour (generator)."""
        events = self._post_halo(comm, ep, op, nbytes)
        if events:
            yield JoinAll(comm.env, events)

    # -- the SPMD program --------------------------------------------------------------
    def rank_body(self, comm: SimComm, ep: int):
        """Generator executed by endpoint ``ep``."""
        env = comm.env
        work = self.work
        n = comm.size
        comp = self.compute_seconds_per_step(n)
        solid = self.solid_seconds_per_step(n)
        halo_parts = self._halo_parts(n)
        halo_main = work.halo_bytes_main(halo_parts)
        halo_cg = work.halo_bytes_cg(halo_parts)
        intra_pen = self.intra_collective_penalty()
        iface = work.interface_bytes() if work.case is CaseKind.FSI else 0.0
        phases = PhaseTimes()
        obs = self.obs
        faults = self.faults
        ep_node = comm.rankmap.node_of(ep) if faults is not None else 0
        track = f"ep-{ep}"

        def mark(name: str, t0: float) -> None:
            if obs is not None and env.now > t0:
                obs.add_span(name, "solver", t0, env.now, track=track,
                             step=step)

        for step in range(self.sim_steps):
            base = step * _OPS_PER_STEP
            step_t0 = env.now
            # A straggling node computes slower; the multiplier is 1.0
            # (and `comp_step is comp`) whenever no injector is armed.
            comp_step = (
                comp if faults is None
                else comp * faults.cpu_factor(ep_node, env.now)
            )
            if self.overlap_halo:
                # Post the predictor halo, compute behind it, wait after.
                pending = self._post_halo(
                    comm, ep, base + _OP_HALO_MAIN, halo_main
                )
                t = env.now
                yield env.timeout(comp_step)
                phases.compute += env.now - t
                mark("compute", t)
                t = env.now
                if pending:
                    yield JoinAll(env, pending)
                phases.halo += env.now - t
                mark("halo", t)
            else:
                # 1. Arithmetic of the whole step.
                t = env.now
                yield env.timeout(comp_step)
                phases.compute += env.now - t
                mark("compute", t)
                # 2. Predictor halo.
                t = env.now
                yield from self._halo_exchange(
                    comm, ep, base + _OP_HALO_MAIN, halo_main
                )
                phases.halo += env.now - t
                mark("halo", t)
            # 3. Pressure solver: halo + dot-product allreduce per iteration.
            cg_t0 = env.now
            for it in range(work.cg_iters_per_step):
                t = env.now
                yield from self._halo_exchange(
                    comm, ep, base + _OP_HALO_CG + 2 * it, halo_cg
                )
                phases.halo += env.now - t
                t = env.now
                if intra_pen:
                    yield env.timeout(intra_pen)
                yield from collectives.allreduce(
                    comm, ep, op=base + _OP_ALLREDUCE + it, nbytes=16.0
                )
                phases.collective += env.now - t
            mark("cg_solve", cg_t0)
            # 4. FSI coupling through the code roots.
            if work.case is CaseKind.FSI:
                t = env.now
                yield from collectives.gather(
                    comm,
                    ep,
                    op=base + _OP_FSI_GATHER,
                    nbytes_per_rank=max(iface / n, 1.0),
                    root=0,
                )
                if ep == 0:
                    yield env.timeout(solid)
                yield from collectives.bcast(
                    comm, ep, op=base + _OP_FSI_BCAST, nbytes=iface, root=0
                )
                phases.coupling += env.now - t
                mark("coupling", t)
            mark("step", step_t0)
        return phases

    def body(self):
        """The SPMD entry point for :class:`~repro.mpi.launcher.MpiJob`."""
        return self.rank_body


class TwoCodeFsiAlya:
    """The FSI case as the paper describes it: *two* code instances.

    The allocation's endpoints split into a fluid group and a (much
    smaller) solid group running concurrently as separate SPMD programs
    over sub-communicators; each coupling step exchanges interface loads
    and displacements between the two roots.  Compared with
    :class:`SimulatedAlya`'s folded FSI model, the coupling here is a
    true inter-code rendezvous: a slow solid stalls the fluid and vice
    versa.

    Parameters
    ----------
    work / ctx / sim_steps:
        As for :class:`SimulatedAlya` (``work.case`` must be FSI).
    solid_fraction:
        Share of endpoints given to the solid code (≥ 1 endpoint).
    """

    def __init__(
        self,
        work: AlyaWorkModel,
        ctx: ComputeContext,
        sim_steps: int = 3,
        solid_fraction: float = 0.1,
    ) -> None:
        if work.case is not CaseKind.FSI:
            raise ValueError("TwoCodeFsiAlya requires an FSI work model")
        if sim_steps < 1:
            raise ValueError("sim_steps must be >= 1")
        if not 0.0 < solid_fraction < 0.5:
            raise ValueError("solid_fraction must be in (0, 0.5)")
        self.work = work
        self.ctx = ctx
        self.sim_steps = sim_steps
        self.solid_fraction = solid_fraction

    def split(self, n_endpoints: int) -> tuple[list[int], list[int]]:
        """(fluid members, solid members) for an ``n_endpoints`` job."""
        if n_endpoints < 2:
            raise ValueError("a two-code job needs at least 2 endpoints")
        n_solid = max(1, int(round(n_endpoints * self.solid_fraction)))
        n_fluid = n_endpoints - n_solid
        return list(range(n_fluid)), list(range(n_fluid, n_endpoints))

    # -- per-code cost helpers -----------------------------------------------
    def _fluid_compute(self, n_fluid: int) -> float:
        parts = n_fluid * (
            self.ctx.ranks_per_node if self.ctx.endpoint_is_node else 1
        )
        serial = self.work.step_flops_per_part(parts) / self.ctx.sustained_core_flops
        return (
            self.ctx.omp.threaded_time(serial, self.ctx.threads_per_rank)
            * self.ctx.cpu_overhead
        )

    def _solid_compute(self, n_solid: int) -> float:
        parts = n_solid * (
            self.ctx.ranks_per_node if self.ctx.endpoint_is_node else 1
        )
        serial = self.work.solid_flops_per_step / self.ctx.sustained_core_flops
        return serial / parts * self.ctx.cpu_overhead

    # -- the SPMD program -----------------------------------------------------
    def rank_body(self, comm: SimComm, ep: int):
        env = comm.env
        work = self.work
        fluid_members, solid_members = self.split(comm.size)
        fluid = comm.group(fluid_members)
        solid = comm.group(solid_members)
        iface = work.interface_bytes()
        fluid_root = fluid_members[0]
        solid_root = solid_members[0]
        is_fluid = ep in set(fluid_members)

        if is_fluid:
            g_rank = fluid.group_rank_of(ep)
            comp = self._fluid_compute(len(fluid_members))
            halo_cg = work.halo_bytes_cg(len(fluid_members))
            halo_main = work.halo_bytes_main(len(fluid_members))
            for step in range(self.sim_steps):
                base = step * _OPS_PER_STEP
                yield env.timeout(comp)
                # Chain halo within the fluid group (slab partition).
                events = []
                for nb in (g_rank - 1, g_rank + 1):
                    if 0 <= nb < fluid.size:
                        events.append(
                            fluid.isend(
                                g_rank, nb,
                                collective_tag(base, 2 + (nb > g_rank)),
                                halo_main,
                            )
                        )
                        events.append(
                            fluid.recv(
                                g_rank, nb,
                                collective_tag(base, 2 + (nb < g_rank)),
                            )
                        )
                if events:
                    yield JoinAll(env, events)
                for it in range(work.cg_iters_per_step):
                    yield from collectives.allreduce(
                        fluid, g_rank, op=base + _OP_ALLREDUCE + it, nbytes=16.0
                    )
                # Coupling: loads to the solid root, displacements back.
                yield from collectives.gather(
                    fluid, g_rank, op=base + _OP_FSI_GATHER,
                    nbytes_per_rank=max(iface / fluid.size, 1.0), root=0,
                )
                if ep == fluid_root:
                    yield comm.isend(
                        fluid_root, solid_root,
                        collective_tag(base, 800), iface,
                    )
                    yield comm.recv(
                        fluid_root, solid_root, collective_tag(base, 801)
                    )
                yield from collectives.bcast(
                    fluid, g_rank, op=base + _OP_FSI_BCAST, nbytes=iface,
                    root=0,
                )
        else:
            g_rank = solid.group_rank_of(ep)
            comp = self._solid_compute(len(solid_members))
            for step in range(self.sim_steps):
                base = step * _OPS_PER_STEP
                if ep == solid_root:
                    yield comm.recv(
                        solid_root, fluid_root, collective_tag(base, 800)
                    )
                yield from collectives.bcast(
                    solid, g_rank, op=base + 950, nbytes=iface, root=0
                )
                yield env.timeout(comp)
                yield from collectives.allreduce(
                    solid, g_rank, op=base + 960, nbytes=16.0
                )
                yield from collectives.gather(
                    solid, g_rank, op=base + 970,
                    nbytes_per_rank=max(iface / solid.size, 1.0), root=0,
                )
                if ep == solid_root:
                    yield comm.isend(
                        solid_root, fluid_root,
                        collective_tag(base, 801), iface,
                    )
        return None
