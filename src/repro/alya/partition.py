"""Domain decomposition of the structured mesh.

Two partitioners:

- :func:`slab_partition` — contiguous axial slabs, the decomposition a
  production CFD code uses for elongated vessels; each part has at most
  two neighbours and the halo is one grid column per interface;
- :func:`graph_partition` — a general graph-based alternative built on
  the cell-adjacency graph (via networkx), used by the placement/
  partitioning ablation.

Both return :class:`PartitionInfo`, the input the work model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alya.mesh import StructuredMesh


@dataclass(frozen=True)
class PartitionInfo:
    """Result of a domain decomposition.

    Attributes
    ----------
    n_parts:
        Number of subdomains.
    cells_per_part:
        Fluid cells owned by each part.
    neighbors:
        For each part, the parts it exchanges halos with.
    halo_cells:
        ``halo_cells[i][j]`` = interface cells between part ``i`` and its
        neighbour ``j`` (same order as ``neighbors[i]``).
    """

    n_parts: int
    cells_per_part: tuple[int, ...]
    neighbors: tuple[tuple[int, ...], ...]
    halo_cells: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if len(self.cells_per_part) != self.n_parts:
            raise ValueError("cells_per_part length mismatch")
        if len(self.neighbors) != self.n_parts:
            raise ValueError("neighbors length mismatch")

    @property
    def imbalance(self) -> float:
        """max/mean cell-count ratio (1.0 = perfectly balanced)."""
        cells = np.asarray(self.cells_per_part, dtype=float)
        mean = cells.mean()
        return float(cells.max() / mean) if mean > 0 else 1.0

    @property
    def max_cells(self) -> int:
        return max(self.cells_per_part)

    def total_halo_cells(self) -> int:
        """Sum of interface cells over all parts (each side counted)."""
        return sum(sum(h) for h in self.halo_cells)


def slab_partition(mesh: StructuredMesh, n_parts: int) -> PartitionInfo:
    """Split the vessel into ``n_parts`` contiguous axial slabs."""
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    if n_parts > mesh.nx:
        raise ValueError(
            f"cannot cut {mesh.nx} columns into {n_parts} slabs"
        )
    # Column boundaries as even as integer division allows.
    bounds = np.linspace(0, mesh.nx, n_parts + 1).astype(int)
    col_counts = mesh.fluid_mask.sum(axis=0)  # fluid cells per column
    cells = []
    neighbors = []
    halos = []
    for i in range(n_parts):
        lo, hi = bounds[i], bounds[i + 1]
        cells.append(int(col_counts[lo:hi].sum()))
        nbrs = []
        h = []
        if i > 0:
            nbrs.append(i - 1)
            h.append(int(col_counts[lo]))
        if i < n_parts - 1:
            nbrs.append(i + 1)
            h.append(int(col_counts[hi - 1]))
        neighbors.append(tuple(nbrs))
        halos.append(tuple(h))
    return PartitionInfo(
        n_parts=n_parts,
        cells_per_part=tuple(cells),
        neighbors=tuple(neighbors),
        halo_cells=tuple(halos),
    )


def graph_partition(mesh: StructuredMesh, n_parts: int) -> PartitionInfo:
    """Partition the cell-adjacency graph with a BFS growth heuristic.

    Grows parts breadth-first from seeds spread along the axis — a cheap
    stand-in for METIS that produces connected parts with modest halo
    overhead on structured meshes.
    """
    import networkx as nx

    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    mask = mesh.fluid_mask
    ids = -np.ones(mask.shape, dtype=int)
    fluid = np.argwhere(mask)
    if n_parts > len(fluid):
        raise ValueError("more parts than fluid cells")
    g = nx.Graph()
    index = {}
    for k, (j, i) in enumerate(fluid):
        index[(j, i)] = k
        g.add_node(k)
    for (j, i), k in index.items():
        for dj, di in ((0, 1), (1, 0)):
            nb = (j + dj, i + di)
            if nb in index:
                g.add_edge(k, index[nb])

    target = len(fluid) / n_parts
    assignment = -np.ones(len(fluid), dtype=int)
    # Seeds spread along the axis for locality.
    order = np.argsort(fluid[:, 1] * mask.shape[0] + fluid[:, 0])
    seeds = [int(order[int(s)]) for s in np.linspace(0, len(order) - 1, n_parts)]
    frontier = {p: [s] for p, s in enumerate(seeds)}
    sizes = [0] * n_parts
    for p, s in enumerate(seeds):
        if assignment[s] == -1:
            assignment[s] = p
            sizes[p] = 1
    changed = True
    while changed:
        changed = False
        for p in range(n_parts):
            if sizes[p] >= target * 1.05:
                continue
            new_frontier = []
            for node in frontier[p]:
                for nb in g.neighbors(node):
                    if assignment[nb] == -1:
                        assignment[nb] = p
                        sizes[p] += 1
                        new_frontier.append(nb)
                        changed = True
            frontier[p] = new_frontier or frontier[p]
    # Sweep up any unassigned cells (disconnected pockets).
    for k in np.flatnonzero(assignment == -1):
        nb_parts = [assignment[nb] for nb in g.neighbors(k) if assignment[nb] >= 0]
        assignment[k] = nb_parts[0] if nb_parts else int(np.argmin(sizes))
        sizes[assignment[k]] += 1

    # Halo edges between parts.
    halo_pairs: dict[tuple[int, int], int] = {}
    for a, b in g.edges:
        pa, pb = int(assignment[a]), int(assignment[b])
        if pa != pb:
            halo_pairs[(pa, pb)] = halo_pairs.get((pa, pb), 0) + 1
            halo_pairs[(pb, pa)] = halo_pairs.get((pb, pa), 0) + 1
    neighbors = []
    halos = []
    for p in range(n_parts):
        nbrs = sorted({q for (a, q) in halo_pairs if a == p})
        neighbors.append(tuple(nbrs))
        halos.append(tuple(halo_pairs[(p, q)] for q in nbrs))
    return PartitionInfo(
        n_parts=n_parts,
        cells_per_part=tuple(int(s) for s in sizes),
        neighbors=tuple(neighbors),
        halo_cells=tuple(halos),
    )
