"""Software package database for image-content modelling.

Image size — one of the §B.1 metrics — is the sum of what a recipe
installs.  The database lists the packages an Alya-like CFD stack needs,
with installed sizes (bytes) and dependencies.  Sizes follow the published
package sizes of CentOS/Ubuntu-era 2018 builds; per-architecture variation
is a few percent and is modelled with a factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.hardware.cpu import Architecture

MB = 1_000_000.0


@dataclass(frozen=True)
class Package:
    """An installable unit.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"openmpi"``.
    size:
        Installed size in bytes on x86-64.
    deps:
        Names of packages that must also be installed.
    arch_factor:
        Per-architecture size multipliers (default 1.0).
    provides_mpi / provides_fabric:
        Capability flags used by the build-technique logic: a
        *system-specific* image omits fabric userspace (bound from the
        host); a *self-contained* image must bundle an MPI.
    """

    name: str
    size: float
    deps: tuple[str, ...] = ()
    arch_factor: Mapping[Architecture, float] = field(default_factory=dict)
    provides_mpi: bool = False
    provides_fabric: bool = False

    def size_on(self, arch: Architecture) -> float:
        """Installed size on ``arch``."""
        return self.size * self.arch_factor.get(arch, 1.0)


def _pkg(name: str, size_mb: float, *deps: str, **flags) -> Package:
    return Package(name=name, size=size_mb * MB, deps=tuple(deps), **flags)


#: The catalogue.  Grouped: OS bases, toolchain, MPI stacks, fabric
#: userspace, numerics, and the application itself.
PACKAGE_DB: dict[str, Package] = {
    p.name: p
    for p in [
        # -- OS bases ---------------------------------------------------------
        _pkg("centos7-base", 204.0),
        _pkg("ubuntu16.04-base", 122.0),
        # -- toolchain ----------------------------------------------------------
        _pkg("glibc-runtime", 32.0),
        _pkg("gcc-gfortran-runtime", 78.0, "glibc-runtime"),
        _pkg("build-tools", 310.0, "gcc-gfortran-runtime"),
        # -- MPI stacks ----------------------------------------------------------
        # Generic OpenMPI built without fabric support: TCP BTL only.
        _pkg("openmpi-generic", 64.0, "gcc-gfortran-runtime", provides_mpi=True),
        # Host-matched MPI built against PSM2/verbs (bind-mounted in
        # system-specific deployments, installed in host images).
        _pkg(
            "openmpi-fabric",
            88.0,
            "gcc-gfortran-runtime",
            provides_mpi=True,
            provides_fabric=True,
        ),
        _pkg("impi-runtime", 460.0, "glibc-runtime", provides_mpi=True,
             provides_fabric=True),
        # -- fabric userspace ----------------------------------------------------
        _pkg("libpsm2", 2.4, provides_fabric=True),
        _pkg("rdma-core", 11.0, provides_fabric=True),
        # -- numerics -------------------------------------------------------------
        _pkg("openblas", 34.0, "gcc-gfortran-runtime"),
        _pkg("metis", 4.6),
        _pkg("hdf5", 48.0, "glibc-runtime"),
        # -- the application -------------------------------------------------------
        _pkg(
            "alya",
            152.0,
            "gcc-gfortran-runtime",
            "openblas",
            "metis",
            "hdf5",
            arch_factor={
                Architecture.PPC64LE: 1.06,
                Architecture.AARCH64: 0.97,
            },
        ),
        _pkg("alya-testdata", 480.0),
    ]
}


def resolve_dependencies(
    names: Iterable[str], db: Mapping[str, Package] = PACKAGE_DB
) -> list[Package]:
    """Transitive dependency closure, in deterministic install order.

    Raises ``KeyError`` for unknown package names and detects cycles.
    """
    resolved: list[Package] = []
    seen: set[str] = set()
    visiting: set[str] = set()

    def visit(name: str) -> None:
        if name in seen:
            return
        if name in visiting:
            raise ValueError(f"dependency cycle through {name!r}")
        if name not in db:
            raise KeyError(f"unknown package {name!r}")
        visiting.add(name)
        for dep in db[name].deps:
            visit(dep)
        visiting.discard(name)
        seen.add(name)
        resolved.append(db[name])

    for name in sorted(set(names)):
        visit(name)
    return resolved


def installed_size(
    names: Iterable[str],
    arch: Architecture,
    db: Mapping[str, Package] = PACKAGE_DB,
) -> float:
    """Total installed bytes of ``names`` plus dependencies on ``arch``."""
    return sum(p.size_on(arch) for p in resolve_dependencies(names, db))
