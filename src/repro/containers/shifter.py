"""Shifter runtime model.

Shifter separates *conversion* from *execution*: the image gateway pulls a
Docker image and flattens it into one loop-mountable file, **once per
image**; job-time deployment on each node is then a cheap loop mount plus
Mount+PID namespaces via the SUID helper — structurally the same start-up
class as Singularity, which is why both track bare-metal in Fig. 1.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.containers.image import FlatImage, OCIImage
from repro.containers.runtime import (
    ContainerRuntime,
    DeployedContainer,
    DeploymentReport,
)
from repro.containers.recipes import BuildTechnique
from repro.oskernel.namespaces import HPC_KINDS, NamespaceSet
from repro.oskernel.nodeos import HOST_FABRIC_DIR, HOST_MPI_DIR, NodeOS
from repro.oskernel.processes import Credentials

LOOP_MOUNT = 0.015
BIND_MOUNT = 0.002
UDIROOT_SETUP = 0.030  # Shifter's udiRoot environment preparation
CONTAINER_ROOT = "/var/udiMount"


class ShifterRuntime(ContainerRuntime):
    """Shifter with its image gateway and udiRoot."""

    name = "shifter"
    cpu_overhead = 1.0
    launch_overhead_per_rank = 0.05

    def deploy(
        self,
        env,
        cluster,
        node_os: Sequence[NodeOS],
        image: Optional[OCIImage] = None,
        registry=None,
        gateway=None,
        obs=None,
    ):
        if not isinstance(image, OCIImage):
            raise TypeError(
                "Shifter consumes Docker (OCI) images via its gateway"
            )
        if gateway is None:
            raise ValueError("Shifter deployment needs an image gateway")
        self.check(cluster.spec, image)
        t0 = env.now
        steps: dict[str, float] = {}

        # 1. Gateway conversion (cached across jobs and nodes).
        with self._step(env, steps, "gateway_convert", obs, track="gateway",
                        cached=gateway.is_cached(image)):
            flat: FlatImage = yield env.process(gateway.convert(image))

        containers: list[Optional[DeployedContainer]] = [None] * len(node_os)

        def per_node(i: int, os_: NodeOS):
            node = cluster.node(os_.node_id)
            track = f"node-{os_.node_id}"
            # 2. udiRoot setup + namespaces via the SUID helper.
            with self._step(env, steps, "namespaces", obs, track):
                user = os_.processes.fork(
                    os_.processes.init_pid,
                    argv=("slurm-task",),
                    creds=Credentials.user(1000),
                )
                helper_creds = user.creds.escalate_suid()
                helper = os_.processes.fork(
                    user.global_pid, argv=("shifter-suid",), creds=helper_creds
                )
                container_proc = os_.processes.fork(
                    helper.global_pid,
                    argv=(image.entrypoint,),
                    unshare=HPC_KINDS,
                    creds=helper_creds,
                )
                yield env.timeout(
                    UDIROOT_SETUP + NamespaceSet.setup_cost(HPC_KINDS)
                )

            # 3. Loop-mount the flattened image from the parallel FS.
            with self._step(env, steps, "loop_mount", obs, track):
                table = container_proc.mount_table
                table.mount_squashfs(flat.tree, CONTAINER_ROOT)
                yield env.timeout(LOOP_MOUNT)
                yield cluster.shared_fs.transfer(1.0e6)  # superblock + metadata

            # 4. Site-configured bind mounts.
            with self._step(env, steps, "bind_mounts", obs, track):
                binds = [("/home/user", f"{CONTAINER_ROOT}/home/user"),
                         ("/gpfs/scratch", f"{CONTAINER_ROOT}/scratch")]
                if image.technique is BuildTechnique.SYSTEM_SPECIFIC:
                    binds.append((HOST_MPI_DIR, f"{CONTAINER_ROOT}/host/mpi"))
                    if os_.has_fabric_userspace:
                        binds.append(
                            (HOST_FABRIC_DIR, f"{CONTAINER_ROOT}/host/fabric")
                        )
                for src, dst in binds:
                    table.bind(os_.rootfs, src, dst)
                    yield env.timeout(BIND_MOUNT)

            container_proc.creds = helper_creds.drop_privileges()
            containers[i] = DeployedContainer(
                runtime_name=self.name,
                node_id=os_.node_id,
                image=image,
                network_path=self.network_path(image, cluster.spec.fabric),
                namespaces=container_proc.namespaces,
                mount_table=table,
                root_path=CONTAINER_ROOT,
                cpu_overhead=self.cpu_overhead,
                launch_overhead_per_rank=self.launch_overhead_per_rank,
            )

        procs = [
            env.process(per_node(i, os_), name=f"shifter-deploy-{i}")
            for i, os_ in enumerate(node_os)
        ]
        yield env.all_of(procs)
        report = DeploymentReport(
            runtime_name=self.name,
            image_name=image.name,
            node_count=len(node_os),
            total_seconds=env.now - t0,
            steps=steps,
        )
        return list(containers), report
