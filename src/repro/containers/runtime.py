"""Runtime base classes and deployment accounting.

A runtime's ``deploy`` is a DES generator that performs the real sequence
of steps (pull, extract, unshare, mount, bind) against a node's
:class:`~repro.oskernel.nodeos.NodeOS`, charging simulated time for each.
It returns one :class:`DeployedContainer` per node plus a
:class:`DeploymentReport` whose step breakdown feeds the §B.1 table.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.containers.compat import (
    check_admin_for_daemon,
    check_architecture,
    check_runtime_installed,
    network_path_for,
)
from repro.containers.image import AnyImage
from repro.hardware.network import NetworkPath
from repro.oskernel.cgroups import Cgroup
from repro.oskernel.mounts import MountTable
from repro.oskernel.namespaces import NamespaceSet
from repro.oskernel.nodeos import NodeOS

if TYPE_CHECKING:  # pragma: no cover
    from repro.containers.registry import Registry, ShifterGateway
    from repro.des.engine import Environment
    from repro.hardware.cluster import Cluster


@dataclass
class DeployedContainer:
    """A container instance ready to run ranks on one node."""

    runtime_name: str
    node_id: int
    image: Optional[AnyImage]
    network_path: NetworkPath
    namespaces: NamespaceSet
    mount_table: MountTable
    cgroup: Optional[Cgroup] = None
    #: Multiplier on compute time (1.0 = no CPU overhead).
    cpu_overhead: float = 1.0
    #: Seconds to exec one MPI rank inside the container.
    launch_overhead_per_rank: float = 0.0
    #: Where the container's mounts live (for teardown); "/" means the
    #: host table (bare-metal) and is never swept.
    root_path: str = "/"


@dataclass
class DeploymentReport:
    """Wall-clock accounting of a deployment across nodes."""

    runtime_name: str
    image_name: str
    node_count: int
    total_seconds: float
    #: step name -> wall seconds attributable to the step (critical path).
    steps: dict[str, float] = field(default_factory=dict)

    def step(self, name: str) -> float:
        """Seconds spent in ``name`` (0.0 when the step did not occur)."""
        return self.steps.get(name, 0.0)

    def to_json_dict(self) -> dict:
        """JSON-safe payload; inverse of :meth:`from_json_dict`."""
        return {
            "runtime_name": self.runtime_name,
            "image_name": self.image_name,
            "node_count": self.node_count,
            "total_seconds": self.total_seconds,
            "steps": dict(self.steps),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "DeploymentReport":
        return cls(
            runtime_name=payload["runtime_name"],
            image_name=payload["image_name"],
            node_count=payload["node_count"],
            total_seconds=payload["total_seconds"],
            steps=dict(payload["steps"]),
        )


class ContainerRuntime(abc.ABC):
    """Common protocol of the four execution modes."""

    #: Runtime identifier matching the cluster's ``installed_runtimes``.
    name: str = "abstract"
    #: CPU-time multiplier containers of this runtime pay.
    cpu_overhead: float = 1.0
    #: Seconds to exec one rank.
    launch_overhead_per_rank: float = 0.0

    def __init__(self, version: Optional[str] = None) -> None:
        self.version = version

    # -- checks ------------------------------------------------------------
    def check(self, cluster_spec, image: Optional[AnyImage]) -> None:
        """Validate that this runtime can run ``image`` on the cluster."""
        check_runtime_installed(self.name, cluster_spec)
        check_admin_for_daemon(self.name, cluster_spec)
        if image is not None:
            check_architecture(image, cluster_spec)

    def network_path(self, image: Optional[AnyImage], fabric) -> NetworkPath:
        """The path this runtime's MPI traffic takes."""
        technique = image.technique if image is not None else None
        return network_path_for(self.name, technique, fabric)

    # -- deployment ----------------------------------------------------------
    @abc.abstractmethod
    def deploy(
        self,
        env: "Environment",
        cluster: "Cluster",
        node_os: Sequence[NodeOS],
        image: Optional[AnyImage],
        registry: Optional["Registry"] = None,
        gateway: Optional["ShifterGateway"] = None,
        obs=None,
    ):
        """DES generator deploying ``image`` on every node in ``node_os``.

        ``obs`` is an optional :class:`repro.obs.span.Observability`
        receiving one span per deployment step per node.
        Returns ``(list[DeployedContainer], DeploymentReport)``.
        """

    #: Fixed teardown cost in seconds (daemon API, netns destruction...).
    teardown_cost: float = 0.02

    def undeploy(self, env: "Environment", container: DeployedContainer,
                 node_os: NodeOS):
        """DES generator: dismantle one node's container.

        Unmounts everything the deployment mounted (newest first), moves
        any remaining pids out of the container cgroup and removes it,
        and charges the runtime's fixed teardown cost.  Returns the wall
        seconds spent.
        """
        t0 = env.now
        if container.image is not None and container.root_path != "/":
            table = container.mount_table
            for mount in reversed(table.mounts_at(container.root_path)):
                table.unmount(mount.target)
        if container.cgroup is not None:
            for pid in list(container.cgroup.pids):
                node_os.cgroups.attach(pid, node_os.cgroups.root)
            node_os.cgroups.remove(container.cgroup.path())
            container.cgroup = None
        if self.teardown_cost > 0:
            yield env.timeout(self.teardown_cost)
        return env.now - t0

    # -- helpers shared by subclasses ---------------------------------------------
    @staticmethod
    def _merge_step(steps: dict[str, float], name: str, seconds: float) -> None:
        """Record a step's wall time (keep the max across nodes)."""
        steps[name] = max(steps.get(name, 0.0), seconds)

    @contextmanager
    def _step(
        self,
        env: "Environment",
        steps: dict[str, float],
        name: str,
        obs=None,
        track: str = "deploy",
        **attrs,
    ):
        """Time one deployment step: folds the body's simulated duration
        into ``steps`` (critical-path max across nodes) and, when ``obs``
        is given, records a span on the node's track."""
        t0 = env.now
        try:
            yield
        finally:
            self._merge_step(steps, name, env.now - t0)
            if obs is not None:
                obs.add_span(
                    name, "deploy", t0, env.now, track=track,
                    runtime=self.name, **attrs,
                )

    def __repr__(self) -> str:  # pragma: no cover
        v = f" {self.version}" if self.version else ""
        return f"<{type(self).__name__}{v}>"
