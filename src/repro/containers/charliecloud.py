"""Charliecloud runtime model (extension beyond the paper's three).

Charliecloud (LANL) is the fully *unprivileged* design point: no root
daemon, no SUID helper — a USER namespace unshared together with the
MOUNT namespace gives the invoking user the capabilities to assemble the
container.  The image is a flattened squashfs mounted through FUSE
(slightly slower than a kernel loop mount, the price of rootlessness);
the network namespace is shared with the host, so the MPI path follows
the image's build technique exactly as for Singularity/Shifter.

Including it demonstrates the framework's extensibility and the design
space the paper's conclusion points at: bare-metal-class performance is a
property of *host networking + host fabric userspace*, achievable with or
without privileged components.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.containers.image import SIFImage
from repro.containers.recipes import BuildTechnique
from repro.containers.runtime import (
    ContainerRuntime,
    DeployedContainer,
    DeploymentReport,
)
from repro.containers.compat import network_path_for
from repro.oskernel.namespaces import NamespaceKind, NamespaceSet
from repro.oskernel.nodeos import HOST_FABRIC_DIR, HOST_MPI_DIR, NodeOS
from repro.oskernel.processes import Credentials

#: Unprivileged kinds: USER makes MOUNT+PID legal without SUID.
CHARLIE_KINDS = frozenset(
    {NamespaceKind.USER, NamespaceKind.MOUNT, NamespaceKind.PID}
)

HEADER_READ_BYTES = 1.0e6
FUSE_MOUNT = 0.055  # squashfuse: slower than a kernel loop mount
BIND_MOUNT = 0.002
CONTAINER_ROOT = "/var/tmp/charliecloud"


class CharliecloudRuntime(ContainerRuntime):
    """Charliecloud: rootless containers via user namespaces."""

    name = "charliecloud"
    cpu_overhead = 1.0
    launch_overhead_per_rank = 0.06

    def network_path(self, image, fabric):
        technique = image.technique if image is not None else None
        return network_path_for("singularity", technique, fabric)

    def deploy(
        self,
        env,
        cluster,
        node_os: Sequence[NodeOS],
        image: Optional[SIFImage] = None,
        registry=None,
        gateway=None,
        obs=None,
    ):
        if not isinstance(image, SIFImage):
            raise TypeError("Charliecloud consumes flattened squashfs images")
        self.check(cluster.spec, image)
        t0 = env.now
        steps: dict[str, float] = {}
        containers: list[Optional[DeployedContainer]] = [None] * len(node_os)

        def per_node(i: int, os_: NodeOS):
            node = cluster.node(os_.node_id)
            track = f"node-{os_.node_id}"
            # 1. Image header off the parallel filesystem.
            with self._step(env, steps, "header_read", obs, track):
                yield cluster.shared_fs.transfer(HEADER_READ_BYTES)

            # 2. Rootless namespace assembly: NO SUID, NO daemon — the
            #    user process unshares USER+MOUNT+PID directly.
            with self._step(env, steps, "namespaces", obs, track):
                user = os_.processes.fork(
                    os_.processes.init_pid,
                    argv=("slurm-task",),
                    creds=Credentials.user(1000),
                )
                container_proc = os_.processes.fork(
                    user.global_pid,
                    argv=(image.entrypoint,),
                    unshare=CHARLIE_KINDS,
                )
                assert not container_proc.creds.is_privileged
                yield env.timeout(NamespaceSet.setup_cost(CHARLIE_KINDS))

            # 3. FUSE mount of the squashfs.
            with self._step(env, steps, "fuse_mount", obs, track):
                table = container_proc.mount_table
                table.mount_squashfs(image.tree, CONTAINER_ROOT)
                yield env.timeout(FUSE_MOUNT)
                yield node.disk.transfer(HEADER_READ_BYTES)

            # 4. Bind mounts (same policy as the other HPC runtimes).
            with self._step(env, steps, "bind_mounts", obs, track):
                binds = [("/home/user", f"{CONTAINER_ROOT}/home/user"),
                         ("/gpfs/scratch", f"{CONTAINER_ROOT}/scratch")]
                if image.technique is BuildTechnique.SYSTEM_SPECIFIC:
                    binds.append((HOST_MPI_DIR, f"{CONTAINER_ROOT}/host/mpi"))
                    if os_.has_fabric_userspace:
                        binds.append(
                            (HOST_FABRIC_DIR, f"{CONTAINER_ROOT}/host/fabric")
                        )
                for src, dst in binds:
                    table.bind(os_.rootfs, src, dst)
                    yield env.timeout(BIND_MOUNT)

            containers[i] = DeployedContainer(
                runtime_name=self.name,
                node_id=os_.node_id,
                image=image,
                network_path=self.network_path(image, cluster.spec.fabric),
                namespaces=container_proc.namespaces,
                mount_table=table,
                root_path=CONTAINER_ROOT,
                cpu_overhead=self.cpu_overhead,
                launch_overhead_per_rank=self.launch_overhead_per_rank,
            )

        procs = [
            env.process(per_node(i, os_), name=f"charliecloud-deploy-{i}")
            for i, os_ in enumerate(node_os)
        ]
        yield env.all_of(procs)
        report = DeploymentReport(
            runtime_name=self.name,
            image_name=image.name,
            node_count=len(node_os),
            total_seconds=env.now - t0,
            steps=steps,
        )
        return list(containers), report
