"""The bare-metal baseline "runtime".

No image, no namespaces beyond the host's, no deployment cost: the
reference every figure in the paper compares against.
"""

from __future__ import annotations

from typing import Sequence

from repro.containers.runtime import (
    ContainerRuntime,
    DeployedContainer,
    DeploymentReport,
)
from repro.hardware.network import NetworkPath
from repro.oskernel.nodeos import NodeOS


class BareMetalRuntime(ContainerRuntime):
    """Runs the application directly on the host."""

    name = "bare-metal"
    cpu_overhead = 1.0
    launch_overhead_per_rank = 0.01  # plain exec + dynamic linking

    def deploy(
        self,
        env,
        cluster,
        node_os: Sequence[NodeOS],
        image=None,
        registry=None,
        gateway=None,
        obs=None,
    ):
        """Immediate: the application binary already sits on the shared FS."""
        if image is not None:
            raise ValueError("bare-metal execution takes no container image")
        self.check(cluster.spec, None)
        if obs is not None:  # zero-cost deployment, but make it visible
            obs.add_span("noop", "deploy", env.now, env.now, track="deploy",
                         runtime=self.name)
        containers = [
            DeployedContainer(
                runtime_name=self.name,
                node_id=os_.node_id,
                image=None,
                network_path=NetworkPath.HOST_NATIVE,
                namespaces=os_.namespaces,
                mount_table=os_.processes.get(os_.processes.init_pid).mount_table,
                cpu_overhead=self.cpu_overhead,
                launch_overhead_per_rank=self.launch_overhead_per_rank,
            )
            for os_ in node_os
        ]
        report = DeploymentReport(
            runtime_name=self.name,
            image_name="(none)",
            node_count=len(node_os),
            total_seconds=0.0,
        )
        if False:  # pragma: no cover - generator shape
            yield None
        return containers, report
