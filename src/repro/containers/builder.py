"""Image builder: recipes → concrete images.

Build output mirrors the real tools:

- ``build_oci`` (``docker build``) produces one layer per logical step
  (base, payload, configuration), so shared files can be duplicated across
  layers and the stored image is larger than the merged tree;
- ``build_sif`` (``singularity build``) produces a single squashfs of the
  merged tree;
- Shifter consumes OCI images through the gateway
  (:class:`repro.containers.registry.ShifterGateway`), not the builder.

Build *time* is modelled from package-install and mksquashfs throughputs,
and is reported, but the paper's §B.1 deployment metric starts at the
registry, so build time never enters experiment timings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.containers.image import (
    GZIP_RATIO,
    Layer,
    OCIImage,
    SIFImage,
)
from repro.containers.packages import Package
from repro.containers.recipes import ContainerRecipe
from repro.oskernel.vfs import FileSystem

#: Effective throughputs on a 2018-era build host, bytes/s.
INSTALL_THROUGHPUT = 90e6
MKSQUASHFS_THROUGHPUT = 160e6
TAR_GZIP_THROUGHPUT = 120e6


@dataclass(frozen=True)
class BuildResult:
    """An image plus how long it took to produce."""

    image: OCIImage | SIFImage
    build_seconds: float


def _install_package(tree: FileSystem, pkg: Package, arch) -> float:
    """Materialise ``pkg`` in ``tree``; returns bytes written.

    Files are split the way distro packages really are: most bytes in
    ``lib``, some in ``bin``, a sliver of metadata in ``share`` — enough
    structure for mount/overlay behaviour to be observable.
    """
    size = pkg.size_on(arch)
    base = f"/opt/{pkg.name}"
    tree.write_file(f"{base}/lib/lib{pkg.name}.so", size * 0.72, parents=True)
    tree.write_file(f"{base}/bin/{pkg.name}", size * 0.23, parents=True)
    tree.write_file(f"{base}/share/doc/{pkg.name}.txt", size * 0.05, parents=True)
    return size


class ImageBuilder:
    """Builds recipes into images."""

    def build_oci(self, recipe: ContainerRecipe) -> BuildResult:
        """Docker-style build: base layer, payload layer, config layer."""
        pkgs = recipe.resolved_packages()
        base_pkgs = [p for p in pkgs if p.name == recipe.base]
        payload_pkgs = [p for p in pkgs if p.name != recipe.base]

        layers: list[Layer] = []
        total_written = 0.0

        base_tree = FileSystem(f"{recipe.name}:base")
        base_bytes = sum(
            _install_package(base_tree, p, recipe.arch) for p in base_pkgs
        )
        layers.append(
            Layer("base", base_tree, base_bytes, base_bytes * GZIP_RATIO)
        )
        total_written += base_bytes

        payload_tree = FileSystem(f"{recipe.name}:payload")
        payload_bytes = sum(
            _install_package(payload_tree, p, recipe.arch) for p in payload_pkgs
        )
        # Package managers touch shared metadata (ld cache, rpm/apt db):
        # a sliver of the base layer is rewritten and thus duplicated.
        dup = base_bytes * 0.04
        payload_tree.write_file("/var/lib/pkgdb/index", dup, parents=True)
        payload_bytes += dup
        layers.append(
            Layer("payload", payload_tree, payload_bytes, payload_bytes * GZIP_RATIO)
        )
        total_written += payload_bytes

        config_tree = FileSystem(f"{recipe.name}:config")
        config_bytes = 4096.0
        config_tree.write_file("/etc/container.env", config_bytes, parents=True)
        layers.append(
            Layer("config", config_tree, config_bytes, config_bytes * GZIP_RATIO)
        )
        total_written += config_bytes

        image = OCIImage(
            name=recipe.name,
            arch=recipe.arch,
            technique=recipe.technique,
            env=dict(recipe.env),
            entrypoint=recipe.entrypoint,
            layers=tuple(layers),
        )
        build_seconds = (
            total_written / INSTALL_THROUGHPUT
            + total_written / TAR_GZIP_THROUGHPUT
        )
        return BuildResult(image=image, build_seconds=build_seconds)

    def build_sif(self, recipe: ContainerRecipe) -> BuildResult:
        """Singularity-style build: merged tree, one squashfs."""
        tree = FileSystem(recipe.name)
        written = sum(
            _install_package(tree, p, recipe.arch)
            for p in recipe.resolved_packages()
        )
        tree.write_file("/etc/container.env", 4096.0, parents=True)
        written += 4096.0
        image = SIFImage(
            name=recipe.name,
            arch=recipe.arch,
            technique=recipe.technique,
            env=dict(recipe.env),
            entrypoint=recipe.entrypoint,
            tree=tree,
            content_bytes=written,
        )
        build_seconds = (
            written / INSTALL_THROUGHPUT + written / MKSQUASHFS_THROUGHPUT
        )
        return BuildResult(image=image, build_seconds=build_seconds)
