"""Image distribution: the registry and Shifter's image gateway.

The registry's egress is a fair-share link: when *n* nodes pull the same
image simultaneously (a ``docker pull`` fan-out at job start), each gets
``1/n`` of the egress — the mechanism behind Docker's poor deployment
scaling versus Singularity's single file on the parallel filesystem.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.containers.image import (
    FlatImage,
    OCIImage,
    SIFImage,
)
from repro.containers.builder import MKSQUASHFS_THROUGHPUT
from repro.des.engine import Environment
from repro.des.links import FairShareLink

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.events import Event


class RegistryError(RuntimeError):
    """Missing image or invalid registry operation."""


class Registry:
    """A container registry reachable from the cluster.

    Parameters
    ----------
    env:
        Simulation environment.
    egress_bandwidth:
        Aggregate bytes/s the registry can serve (shared by all pulls).
    latency:
        Per-request latency (TLS + manifest round-trips folded in).
    """

    def __init__(
        self,
        env: Environment,
        egress_bandwidth: float = 1.0e9,
        latency: float = 0.25,
    ) -> None:
        self.env = env
        self.link = FairShareLink(
            env, bandwidth=egress_bandwidth, latency=latency, name="registry"
        )
        self._images: dict[str, OCIImage | SIFImage] = {}

    def push(self, image: OCIImage | SIFImage) -> None:
        """Make ``image`` available under its name."""
        self._images[image.name] = image

    def get(self, name: str) -> OCIImage | SIFImage:
        try:
            return self._images[name]
        except KeyError:
            raise RegistryError(f"no image {name!r} in registry") from None

    def __contains__(self, name: str) -> bool:
        return name in self._images

    def pull(self, name: str) -> "Event":
        """Transfer the image's compressed bytes; fires when complete."""
        image = self.get(name)
        return self.link.transfer(image.transfer_size)


class ShifterGateway:
    """Shifter's image gateway: converts OCI images to flat images, once.

    The conversion (pull + flatten + squash) happens on a gateway node and
    is cached by source digest; subsequent jobs only loop-mount the cached
    product.  This is why Shifter's *per-job* deployment overhead is small
    even though its input is a Docker image.
    """

    def __init__(self, env: Environment, registry: Registry) -> None:
        self.env = env
        self.registry = registry
        self._cache: dict[str, FlatImage] = {}
        self.conversions = 0

    def is_cached(self, image: OCIImage) -> bool:
        return image.digest in self._cache

    def cached(self, image: OCIImage) -> FlatImage:
        try:
            return self._cache[image.digest]
        except KeyError:
            raise RegistryError(
                f"image {image.name!r} has not been converted yet"
            ) from None

    def convert(self, image: OCIImage):
        """DES generator: pull (if needed) and flatten ``image``.

        Returns the cached :class:`FlatImage`.  Run it with
        ``env.process(gateway.convert(img))``.
        """
        if image.digest in self._cache:
            return self._noop(image)
        return self._convert(image)

    def _noop(self, image: OCIImage):
        if False:  # pragma: no cover - generator shape
            yield None
        return self._cache[image.digest]

    def _convert(self, image: OCIImage):
        yield self.registry.pull(image.name)
        # Flatten: apply layers in order into one tree (upper layers win),
        # then mksquashfs the merged tree.
        merged = None
        merged_bytes = 0.0
        trees = image.layer_trees()  # top-most first
        seen: set[str] = set()
        merged = trees[0].copy_tree("flat")
        for path, f in trees[0].walk_files("/"):
            seen.add(path)
            merged_bytes += f.size
        for tree in trees[1:]:
            for path, f in tree.walk_files("/"):
                if path not in seen:
                    seen.add(path)
                    merged.write_file(path, f.size, parents=True)
                    merged_bytes += f.size
        yield self.env.timeout(merged_bytes / MKSQUASHFS_THROUGHPUT)
        flat = FlatImage(
            name=image.name,
            arch=image.arch,
            technique=image.technique,
            env=dict(image.env),
            entrypoint=image.entrypoint,
            tree=merged,
            content_bytes=merged_bytes,
            source_digest=image.digest,
        )
        self._cache[image.digest] = flat
        self.conversions += 1
        return flat
