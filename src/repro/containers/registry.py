"""Image distribution: the registry and Shifter's image gateway.

The registry's egress is a fair-share link: when *n* nodes pull the same
image simultaneously (a ``docker pull`` fan-out at job start), each gets
``1/n`` of the egress — the mechanism behind Docker's poor deployment
scaling versus Singularity's single file on the parallel filesystem.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.containers.image import (
    FlatImage,
    OCIImage,
    SIFImage,
)
from repro.containers.builder import MKSQUASHFS_THROUGHPUT
from repro.des.engine import Environment
from repro.des.links import FairShareLink
from repro.faults.errors import PullError
from repro.faults.plan import FaultKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.events import Event
    from repro.faults.injector import FaultInjector


class RegistryError(RuntimeError):
    """Missing image or invalid registry operation."""


class Registry:
    """A container registry reachable from the cluster.

    Parameters
    ----------
    env:
        Simulation environment.
    egress_bandwidth:
        Aggregate bytes/s the registry can serve (shared by all pulls).
    latency:
        Per-request latency (TLS + manifest round-trips folded in).
    """

    def __init__(
        self,
        env: Environment,
        egress_bandwidth: float = 1.0e9,
        latency: float = 0.25,
    ) -> None:
        self.env = env
        self.link = FairShareLink(
            env, bandwidth=egress_bandwidth, latency=latency, name="registry"
        )
        self._images: dict[str, OCIImage | SIFImage] = {}
        #: Optional :class:`~repro.faults.injector.FaultInjector`; set by
        #: the injector's ``arm()``.  ``None`` (the default) keeps
        #: :meth:`pull_retry` on the exact single-transfer path of
        #: :meth:`pull`.
        self.faults: Optional["FaultInjector"] = None
        #: Optional mirror registry tried once per pull after the
        #: primary's retries are exhausted.
        self.fallback: Optional["Registry"] = None

    def push(self, image: OCIImage | SIFImage) -> None:
        """Make ``image`` available under its name."""
        self._images[image.name] = image

    def get(self, name: str) -> OCIImage | SIFImage:
        try:
            return self._images[name]
        except KeyError:
            raise RegistryError(f"no image {name!r} in registry") from None

    def __contains__(self, name: str) -> bool:
        return name in self._images

    def pull(self, name: str) -> "Event":
        """Transfer the image's compressed bytes; fires when complete."""
        image = self.get(name)
        return self.link.transfer(image.transfer_size)

    def pull_retry(self, name: str):
        """DES generator: pull ``name`` with retry/backoff under faults.

        With no armed injector this yields exactly the one
        ``link.transfer`` event :meth:`pull` would — same event, same
        time — so the no-fault trace is unchanged.  Under an injector,
        each attempt consumes the next pull fault (registry timeout,
        aborted transfer, corrupt layer), pays the attempt's cost on the
        simulated clock, backs off per the plan's tolerance, and retries
        up to ``pull_max_retries`` times.  When the primary gives up and
        a :attr:`fallback` registry is configured, the image is pulled
        from the mirror instead; otherwise :class:`PullError` propagates
        into the deployment.
        """
        image = self.get(name)
        faults = self.faults
        if faults is None:
            yield self.link.transfer(image.transfer_size)
            return
        tol = faults.plan.tolerance
        attempt = 0
        while True:
            attempt += 1
            fault = faults.take_pull_fault()
            if fault is None:
                yield self.link.transfer(image.transfer_size)
                return
            if fault.kind is FaultKind.REGISTRY_TIMEOUT:
                if fault.duration > 0:
                    yield self.env.timeout(fault.duration)
                reason = "registry timeout"
            elif fault.kind is FaultKind.PULL_FAIL:
                if fault.factor > 0:
                    yield self.link.transfer(
                        image.transfer_size * min(fault.factor, 1.0)
                    )
                reason = "transfer aborted"
            else:  # CORRUPT_LAYER: full transfer, digest check fails
                yield self.link.transfer(image.transfer_size)
                reason = "layer digest mismatch"
            faults.record_pull_failure(name, reason, attempt)
            if attempt > tol.pull_max_retries:
                if self.fallback is not None and name in self.fallback:
                    faults.record_pull_fallback(name)
                    yield from self.fallback.pull_retry(name)
                    return
                raise PullError(name, reason, attempt)
            yield self.env.timeout(tol.pull_delay(attempt))


class ShifterGateway:
    """Shifter's image gateway: converts OCI images to flat images, once.

    The conversion (pull + flatten + squash) happens on a gateway node and
    is cached by source digest; subsequent jobs only loop-mount the cached
    product.  This is why Shifter's *per-job* deployment overhead is small
    even though its input is a Docker image.
    """

    def __init__(self, env: Environment, registry: Registry) -> None:
        self.env = env
        self.registry = registry
        self._cache: dict[str, FlatImage] = {}
        self.conversions = 0

    def is_cached(self, image: OCIImage) -> bool:
        return image.digest in self._cache

    def cached(self, image: OCIImage) -> FlatImage:
        try:
            return self._cache[image.digest]
        except KeyError:
            raise RegistryError(
                f"image {image.name!r} has not been converted yet"
            ) from None

    def convert(self, image: OCIImage):
        """DES generator: pull (if needed) and flatten ``image``.

        Returns the cached :class:`FlatImage`.  Run it with
        ``env.process(gateway.convert(img))``.
        """
        if image.digest in self._cache:
            return self._noop(image)
        return self._convert(image)

    def _noop(self, image: OCIImage):
        if False:  # pragma: no cover - generator shape
            yield None
        return self._cache[image.digest]

    def _convert(self, image: OCIImage):
        yield from self.registry.pull_retry(image.name)
        # Flatten: apply layers in order into one tree (upper layers win),
        # then mksquashfs the merged tree.
        merged = None
        merged_bytes = 0.0
        trees = image.layer_trees()  # top-most first
        seen: set[str] = set()
        merged = trees[0].copy_tree("flat")
        for path, f in trees[0].walk_files("/"):
            seen.add(path)
            merged_bytes += f.size
        for tree in trees[1:]:
            for path, f in tree.walk_files("/"):
                if path not in seen:
                    seen.add(path)
                    merged.write_file(path, f.size, parents=True)
                    merged_bytes += f.size
        yield self.env.timeout(merged_bytes / MKSQUASHFS_THROUGHPUT)
        flat = FlatImage(
            name=image.name,
            arch=image.arch,
            technique=image.technique,
            env=dict(image.env),
            entrypoint=image.entrypoint,
            tree=merged,
            content_bytes=merged_bytes,
            source_digest=image.digest,
        )
        self._cache[image.digest] = flat
        self.conversions += 1
        return flat
