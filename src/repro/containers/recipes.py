"""Container build recipes and the two build techniques of §B.2.

A recipe is the declarative input to the :class:`~repro.containers.builder.
ImageBuilder` — the analogue of a Dockerfile / Singularity definition file.
The paper contrasts:

- **SYSTEM_SPECIFIC** — the image is built for one cluster: the host's
  MPI and fabric userspace are *not* packaged but bind-mounted at run
  time, so the containerised application links against the host stack and
  can drive the fast fabric.  Portability is sacrificed.
- **SELF_CONTAINED** — a generic MPI (TCP only) and everything else is
  bundled; the image runs anywhere with a matching ISA, but traffic falls
  back to TCP on fabrics that need host userspace (Figs. 2–3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.containers.packages import PACKAGE_DB, Package, resolve_dependencies
from repro.hardware.cpu import Architecture


class BuildTechnique(enum.Enum):
    """How the image relates to the host software stack."""

    SYSTEM_SPECIFIC = "system-specific"
    SELF_CONTAINED = "self-contained"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ContainerRecipe:
    """Declarative image description.

    Attributes
    ----------
    name:
        Image name, e.g. ``"alya-artery"``.
    base:
        OS base package name (one layer).
    packages:
        Payload package names (beyond the base).
    technique:
        System-specific or self-contained (see module docstring).
    arch:
        Target ISA — images must be (re)built per architecture; running a
        mismatched image is impossible, which is exactly what the
        portability study exercises.
    env / entrypoint:
        Image configuration (metadata only).
    """

    name: str
    base: str
    packages: tuple[str, ...]
    technique: BuildTechnique
    arch: Architecture
    env: Mapping[str, str] = field(default_factory=dict)
    entrypoint: str = "/opt/alya/bin/alya"

    def __post_init__(self) -> None:
        if self.base not in PACKAGE_DB:
            raise KeyError(f"unknown base package {self.base!r}")
        # Validate early: unknown names or cycles fail at recipe creation.
        resolve_dependencies((self.base, *self.packages))
        if self.technique is BuildTechnique.SELF_CONTAINED:
            if not any(
                PACKAGE_DB[p].provides_mpi
                for p in self._closure_names()
            ):
                raise ValueError(
                    "a self-contained recipe must bundle an MPI implementation"
                )

    def _closure_names(self) -> set[str]:
        return {
            p.name
            for p in resolve_dependencies((self.base, *self.packages))
        }

    def resolved_packages(self) -> list[Package]:
        """Dependency closure of base + payload, install order."""
        return resolve_dependencies((self.base, *self.packages))

    def content_size(self) -> float:
        """Uncompressed content bytes on the target architecture."""
        return sum(p.size_on(self.arch) for p in self.resolved_packages())

    @property
    def bundles_fabric_stack(self) -> bool:
        """Whether the image carries fabric userspace of its own."""
        return any(p.provides_fabric for p in self.resolved_packages())

    @property
    def binds_host_mpi(self) -> bool:
        """System-specific images take MPI from the host at run time."""
        return self.technique is BuildTechnique.SYSTEM_SPECIFIC


def alya_recipe(
    technique: BuildTechnique,
    arch: Architecture = Architecture.X86_64,
    with_testdata: bool = True,
) -> ContainerRecipe:
    """The paper's Alya artery image, in either build technique.

    The system-specific variant leaves MPI and fabric userspace out of the
    image (they are bind-mounted from the host); the self-contained one
    bundles a generic TCP-only OpenMPI.
    """
    payload = ["alya"]
    if with_testdata:
        payload.append("alya-testdata")
    if technique is BuildTechnique.SELF_CONTAINED:
        payload.append("openmpi-generic")
    return ContainerRecipe(
        name=f"alya-artery-{technique.value}-{arch.value}",
        base="centos7-base",
        packages=tuple(payload),
        technique=technique,
        arch=arch,
        env={"OMP_PROC_BIND": "true"},
    )
