"""Docker runtime model.

Deployment on a node follows the real engine's path (Docker 1.x as on
Lenox):

1. the root-owned **daemon** must be running (started once per node);
2. ``docker pull``: every node transfers the compressed layers from the
   registry — whose egress is *shared*, so pulls contend — and extracts
   them to the local layer store (gunzip + disk, whichever is slower);
3. ``docker run``: the daemon creates the **full namespace set** (the NET
   namespace alone costs ~150 ms of veth/bridge plumbing), a cgroup, and
   an **overlay** mount of the extracted layers with a fresh upper.

The created container's traffic leaves through the bridge+NAT path —
the namespace choice, not a tunable — which is what degrades MPI at
growing rank counts in Fig. 1.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.containers.image import OCIImage
from repro.containers.runtime import (
    ContainerRuntime,
    DeployedContainer,
    DeploymentReport,
)
from repro.containers.compat import network_path_for
from repro.oskernel.namespaces import DOCKER_KINDS, NamespaceKind, NamespaceSet
from repro.oskernel.nodeos import NodeOS

#: Fixed costs (seconds).
DAEMON_START = 0.9
DAEMON_API = 0.25
CGROUP_SETUP = 0.005
OVERLAY_MOUNT = 0.010
VETH_BRIDGE_ATTACH = 0.060
GUNZIP_THROUGHPUT = 150e6  # bytes of *uncompressed* output per second


class DockerRuntime(ContainerRuntime):
    """Docker with its root daemon and full isolation.

    Parameters
    ----------
    version:
        Site-installed version string.
    host_network:
        ``docker run --net=host`` — the era's known mitigation for MPI:
        the NET namespace is *not* unshared, traffic skips the bridge, and
        the path is decided by the image's build technique exactly as for
        Singularity/Shifter.  Costs full network isolation.
    """

    name = "docker"
    cpu_overhead = 1.005  # cgroup accounting + seccomp, sub-1%
    launch_overhead_per_rank = 0.12  # docker exec API round-trip
    teardown_cost = 0.35  # docker stop/rm API + netns destruction

    def __init__(self, version=None, host_network: bool = False) -> None:
        super().__init__(version)
        self.host_network = host_network

    def network_path(self, image, fabric):
        if self.host_network:
            technique = image.technique if image is not None else None
            return network_path_for("singularity", technique, fabric)
        return super().network_path(image, fabric)

    def deploy(
        self,
        env,
        cluster,
        node_os: Sequence[NodeOS],
        image: Optional[OCIImage] = None,
        registry=None,
        gateway=None,
        obs=None,
    ):
        if not isinstance(image, OCIImage):
            raise TypeError("Docker deploys OCI images")
        if registry is None:
            raise ValueError("Docker deployment needs a registry to pull from")
        self.check(cluster.spec, image)
        t0 = env.now
        steps: dict[str, float] = {}
        containers: list[Optional[DeployedContainer]] = [None] * len(node_os)

        def per_node(i: int, os_: NodeOS):
            node = cluster.node(os_.node_id)
            track = f"node-{os_.node_id}"
            # 1. Daemon.
            with self._step(env, steps, "daemon_start", obs, track):
                yield env.timeout(DAEMON_START)

            # 2. Pull: compressed layers over the shared registry egress,
            #    then extraction (gunzip CPU and disk write overlap).
            #    A warm layer cache skips both.
            if image.digest not in os_.image_cache:
                with self._step(env, steps, "pull", obs, track,
                                nbytes=image.transfer_size):
                    yield from registry.pull_retry(image.name)
                with self._step(env, steps, "extract", obs, track,
                                nbytes=image.content_size):
                    gunzip = env.timeout(image.content_size / GUNZIP_THROUGHPUT)
                    disk = node.disk.transfer(image.content_size)
                    yield env.all_of([gunzip, disk])
                os_.image_cache.add(image.digest)

            # 3. Create: namespaces + cgroup + overlay (+ veth unless
            #    --net=host), via daemon.
            with self._step(env, steps, "create", obs, track):
                init = os_.processes.init_pid  # the daemon runs as root
                kinds = (
                    DOCKER_KINDS - {NamespaceKind.NET}
                    if self.host_network
                    else DOCKER_KINDS
                )
                container_proc = os_.processes.fork(
                    init, argv=(image.entrypoint,), unshare=kinds
                )
                cgroup = os_.cgroups.create(f"/docker/{image.name}-{os_.node_id}")
                os_.cgroups.attach(container_proc.global_pid, cgroup)
                container_proc.cgroup = cgroup
                table = container_proc.mount_table
                table.mount_overlay(image.layer_trees(), "/var/lib/docker/merged")
                yield env.timeout(
                    DAEMON_API
                    + NamespaceSet.setup_cost(kinds)
                    + CGROUP_SETUP
                    + OVERLAY_MOUNT
                    + (0.0 if self.host_network else VETH_BRIDGE_ATTACH)
                )

            containers[i] = DeployedContainer(
                runtime_name=self.name,
                node_id=os_.node_id,
                image=image,
                network_path=self.network_path(image, cluster.spec.fabric),
                namespaces=container_proc.namespaces,
                mount_table=table,
                cgroup=cgroup,
                root_path="/var/lib/docker/merged",
                cpu_overhead=self.cpu_overhead,
                launch_overhead_per_rank=self.launch_overhead_per_rank,
            )

        procs = [
            env.process(per_node(i, os_), name=f"docker-deploy-{i}")
            for i, os_ in enumerate(node_os)
        ]
        yield env.all_of(procs)
        report = DeploymentReport(
            runtime_name=self.name,
            image_name=image.name,
            node_count=len(node_os),
            total_seconds=env.now - t0,
            steps=steps,
        )
        return list(containers), report
