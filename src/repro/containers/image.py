"""Concrete image formats.

Three on-disk representations, matching the runtimes' storage models:

- :class:`OCIImage` — Docker: an ordered stack of tar layers, stored and
  transferred gzip-compressed, *extracted* on every node before use;
- :class:`SIFImage` — Singularity: one squashfs file, loop-mounted
  directly (no extraction), ~55% smaller than the content;
- :class:`FlatImage` — Shifter: the gateway flattens an OCI image once
  into a single loop-mountable file.

Image size (§B.1) therefore differs by format for identical content,
and deployment cost differs structurally (extract-per-node vs.
mount-in-place).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.containers.recipes import BuildTechnique
from repro.hardware.cpu import Architecture
from repro.oskernel.vfs import FileSystem

#: gzip ratio for typical binary layers (observed on CentOS-era images).
GZIP_RATIO = 0.42
#: squashfs (gzip block) ratio; slightly worse than stream gzip.
SQUASHFS_RATIO = 0.45


class ImageFormat(enum.Enum):
    """On-disk representation of a container image."""

    OCI_LAYERS = "oci-layers"
    SIF_SQUASHFS = "sif-squashfs"
    SHIFTER_FLAT = "shifter-flat"


@dataclass(frozen=True)
class Layer:
    """One OCI layer: a filesystem delta plus its stored sizes."""

    name: str
    tree: FileSystem
    content_bytes: float
    compressed_bytes: float

    def __post_init__(self) -> None:
        if self.content_bytes < 0 or self.compressed_bytes < 0:
            raise ValueError("layer sizes must be >= 0")


@dataclass(frozen=True)
class _ImageBase:
    """Fields common to every image format."""

    name: str
    arch: Architecture
    technique: BuildTechnique
    env: Mapping[str, str] = field(default_factory=dict, compare=False)
    entrypoint: str = field(default="/bin/sh", compare=False)


@dataclass(frozen=True)
class OCIImage(_ImageBase):
    """A Docker (OCI) image: ordered layers, pulled compressed."""

    layers: Sequence[Layer] = ()
    format: ImageFormat = ImageFormat.OCI_LAYERS

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("an OCI image needs at least one layer")

    @property
    def content_size(self) -> float:
        """Uncompressed content across layers (duplicates included)."""
        return sum(l.content_bytes for l in self.layers)

    @property
    def size_bytes(self) -> float:
        """On-disk size once extracted on a node (layer store)."""
        return self.content_size

    @property
    def transfer_size(self) -> float:
        """Bytes moved on a registry pull (compressed layers)."""
        return sum(l.compressed_bytes for l in self.layers)

    def layer_trees(self) -> list[FileSystem]:
        """Layer filesystems, *top-most first* (overlay lowerdir order)."""
        return [l.tree for l in reversed(self.layers)]

    @property
    def digest(self) -> str:
        """Stable content identifier."""
        return f"sha256:{abs(hash((self.name, self.arch.value, len(self.layers)))):x}"


@dataclass(frozen=True)
class SIFImage(_ImageBase):
    """A Singularity SIF image: one compressed squashfs partition."""

    tree: Optional[FileSystem] = None
    content_bytes: float = 0.0
    format: ImageFormat = ImageFormat.SIF_SQUASHFS

    def __post_init__(self) -> None:
        if self.tree is None:
            raise ValueError("a SIF image needs a filesystem tree")
        if self.content_bytes < 0:
            raise ValueError("content_bytes must be >= 0")

    @property
    def size_bytes(self) -> float:
        """On-disk size of the single SIF file (compressed squashfs)."""
        return self.content_bytes * SQUASHFS_RATIO

    @property
    def transfer_size(self) -> float:
        """A SIF moves as-is: one compressed file."""
        return self.size_bytes


@dataclass(frozen=True)
class FlatImage(_ImageBase):
    """A Shifter gateway product: flattened, loop-mountable image."""

    tree: Optional[FileSystem] = None
    content_bytes: float = 0.0
    source_digest: str = ""
    format: ImageFormat = ImageFormat.SHIFTER_FLAT

    def __post_init__(self) -> None:
        if self.tree is None:
            raise ValueError("a flat image needs a filesystem tree")
        if self.content_bytes < 0:
            raise ValueError("content_bytes must be >= 0")

    @property
    def size_bytes(self) -> float:
        """Flattened squashfs: duplicates across layers are gone."""
        return self.content_bytes * SQUASHFS_RATIO

    @property
    def transfer_size(self) -> float:
        return self.size_bytes


AnyImage = OCIImage | SIFImage | FlatImage
