"""Container images, registries, and the four execution runtimes.

The subpackage models the complete container lifecycle the paper measures:

- **recipes** (:mod:`repro.containers.recipes`): what goes *into* an image,
  including the paper's two build techniques — *system-specific* (host MPI
  and fabric libraries bound in at run time) and *self-contained*
  (generic TCP MPI bundled);
- **building** (:mod:`repro.containers.builder`): recipes to concrete
  image formats — Docker's OCI layer stack, Singularity's squashfs SIF,
  Shifter's gateway-flattened image;
- **distribution** (:mod:`repro.containers.registry`): registry pulls and
  Shifter's image-gateway conversion;
- **execution** (:mod:`repro.containers.docker` / ``singularity`` /
  ``shifter`` / ``baremetal``): each runtime engages the
  :mod:`repro.oskernel` machinery it really uses, yielding deployment
  timelines and the network path MPI traffic will take.
"""

from repro.containers.packages import PACKAGE_DB, Package, resolve_dependencies
from repro.containers.recipes import BuildTechnique, ContainerRecipe, alya_recipe
from repro.containers.image import (
    FlatImage,
    ImageFormat,
    Layer,
    OCIImage,
    SIFImage,
)
from repro.containers.builder import ImageBuilder
from repro.containers.registry import Registry, ShifterGateway
from repro.containers.runtime import ContainerRuntime, DeployedContainer, DeploymentReport
from repro.containers.compat import (
    CompatibilityError,
    IncompatibleArchitectureError,
    RuntimeNotInstalledError,
    network_path_for,
)
from repro.containers.baremetal import BareMetalRuntime
from repro.containers.charliecloud import CharliecloudRuntime
from repro.containers.docker import DockerRuntime
from repro.containers.singularity import SingularityRuntime
from repro.containers.shifter import ShifterRuntime

__all__ = [
    "BareMetalRuntime",
    "BuildTechnique",
    "CharliecloudRuntime",
    "CompatibilityError",
    "ContainerRecipe",
    "ContainerRuntime",
    "DeployedContainer",
    "DeploymentReport",
    "DockerRuntime",
    "FlatImage",
    "ImageBuilder",
    "ImageFormat",
    "IncompatibleArchitectureError",
    "Layer",
    "OCIImage",
    "PACKAGE_DB",
    "Package",
    "Registry",
    "RuntimeNotInstalledError",
    "SIFImage",
    "ShifterGateway",
    "ShifterRuntime",
    "SingularityRuntime",
    "alya_recipe",
    "network_path_for",
    "resolve_dependencies",
]
