"""Singularity runtime model.

Deployment of a SIF image on a node (Singularity 2.x, as in the paper):

1. the single image file already lives on the parallel filesystem — only
   its header is read at start (no pull, no extraction);
2. the SUID starter escalates, unshares **Mount + PID only**, loop-mounts
   the squashfs partition read-only, performs the configured bind mounts
   (``$HOME``, scratch — plus host MPI/fabric directories for a
   system-specific image), then drops privileges and execs the payload.

Because the NET namespace is shared with the host, the container sees the
fabric HCAs; whether it can *drive* them is a pure userspace question
decided by the image's build technique (:mod:`repro.containers.compat`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.containers.image import SIFImage
from repro.containers.runtime import (
    ContainerRuntime,
    DeployedContainer,
    DeploymentReport,
)
from repro.containers.recipes import BuildTechnique
from repro.oskernel.namespaces import HPC_KINDS, NamespaceSet
from repro.oskernel.nodeos import HOST_FABRIC_DIR, HOST_MPI_DIR, NodeOS
from repro.oskernel.processes import Credentials

#: Fixed costs (seconds), from published Singularity 2.x startup traces.
HEADER_READ_BYTES = 1.0e6
STARTER_EXEC = 0.020
LOOP_MOUNT = 0.015
BIND_MOUNT = 0.002
CONTAINER_ROOT = "/var/singularity/mnt"


class SingularityRuntime(ContainerRuntime):
    """Singularity with the SUID starter workflow."""

    name = "singularity"
    cpu_overhead = 1.0  # §C: "close to bare-metal performances"
    launch_overhead_per_rank = 0.08  # starter + loop setup per exec

    def deploy(
        self,
        env,
        cluster,
        node_os: Sequence[NodeOS],
        image: Optional[SIFImage] = None,
        registry=None,
        gateway=None,
        obs=None,
    ):
        if not isinstance(image, SIFImage):
            raise TypeError("Singularity deploys SIF images")
        self.check(cluster.spec, image)
        t0 = env.now
        steps: dict[str, float] = {}
        containers: list[Optional[DeployedContainer]] = [None] * len(node_os)

        def per_node(i: int, os_: NodeOS):
            node = cluster.node(os_.node_id)
            track = f"node-{os_.node_id}"
            # 1. Read the SIF header off the parallel filesystem.
            with self._step(env, steps, "header_read", obs, track):
                yield cluster.shared_fs.transfer(HEADER_READ_BYTES)

            # 2. SUID starter: user creds escalate, unshare Mount+PID.
            with self._step(env, steps, "namespaces", obs, track):
                user = os_.processes.fork(
                    os_.processes.init_pid,
                    argv=("sbatch-shell",),
                    creds=Credentials.user(1000),
                )
                starter_creds = user.creds.escalate_suid()
                starter = os_.processes.fork(
                    user.global_pid, argv=("starter-suid",), creds=starter_creds
                )
                container_proc = os_.processes.fork(
                    starter.global_pid,
                    argv=(image.entrypoint,),
                    unshare=HPC_KINDS,
                    creds=starter_creds,
                )
                yield env.timeout(
                    STARTER_EXEC + NamespaceSet.setup_cost(HPC_KINDS)
                )

            # 3. Loop-mount the squashfs partition (read-only).
            with self._step(env, steps, "loop_mount", obs, track):
                table = container_proc.mount_table
                table.mount_squashfs(image.tree, CONTAINER_ROOT)
                yield env.timeout(LOOP_MOUNT)
                yield node.disk.transfer(HEADER_READ_BYTES)  # superblock read

            # 4. Bind mounts: $HOME, scratch, and the host MPI stack for
            #    system-specific images.
            with self._step(env, steps, "bind_mounts", obs, track):
                binds = [("/home/user", f"{CONTAINER_ROOT}/home/user"),
                         ("/gpfs/scratch", f"{CONTAINER_ROOT}/scratch")]
                if image.technique is BuildTechnique.SYSTEM_SPECIFIC:
                    binds.append((HOST_MPI_DIR, f"{CONTAINER_ROOT}/host/mpi"))
                    if os_.has_fabric_userspace:
                        binds.append(
                            (HOST_FABRIC_DIR, f"{CONTAINER_ROOT}/host/fabric")
                        )
                for src, dst in binds:
                    table.bind(os_.rootfs, src, dst)
                    yield env.timeout(BIND_MOUNT)

            # 5. Drop privileges; the payload runs as the invoking user.
            container_proc.creds = starter_creds.drop_privileges()

            containers[i] = DeployedContainer(
                runtime_name=self.name,
                node_id=os_.node_id,
                image=image,
                network_path=self.network_path(image, cluster.spec.fabric),
                namespaces=container_proc.namespaces,
                mount_table=table,
                root_path=CONTAINER_ROOT,
                cpu_overhead=self.cpu_overhead,
                launch_overhead_per_rank=self.launch_overhead_per_rank,
            )

        procs = [
            env.process(per_node(i, os_), name=f"singularity-deploy-{i}")
            for i, os_ in enumerate(node_os)
        ]
        yield env.all_of(procs)
        report = DeploymentReport(
            runtime_name=self.name,
            image_name=image.name,
            node_count=len(node_os),
            total_seconds=env.now - t0,
            steps=steps,
        )
        return list(containers), report
