"""Compatibility rules: what can run where, and over which network path.

Centralises the decisions the paper's §B.2 portability study turns on:

1. **ISA**: an image only runs on nodes of its architecture — the reason
   the study rebuilds the container per machine (Skylake / Power9 / Armv8).
2. **Runtime availability**: Docker exists only where the experimenters
   have root for its daemon (Lenox).
3. **Network path**: runtime + build technique + fabric determine whether
   MPI gets the native fabric, a TCP fallback, or Docker's bridge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.containers.image import AnyImage
from repro.containers.recipes import BuildTechnique
from repro.hardware.network import FabricSpec, NetworkPath

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import ClusterSpec


class CompatibilityError(RuntimeError):
    """The experiment cannot run as specified."""


class IncompatibleArchitectureError(CompatibilityError):
    """Image ISA does not match the node ISA (exec format error)."""


class RuntimeNotInstalledError(CompatibilityError):
    """The requested container runtime is not deployed on the cluster."""


def check_architecture(image: AnyImage, cluster: "ClusterSpec") -> None:
    """Raise unless the image's ISA matches the cluster's."""
    if image.arch is not cluster.node.arch:
        raise IncompatibleArchitectureError(
            f"image {image.name!r} is {image.arch.value}, but "
            f"{cluster.name} nodes are {cluster.node.arch.value} "
            "(cannot execute; rebuild the image for this architecture)"
        )


def check_runtime_installed(runtime_name: str, cluster: "ClusterSpec") -> None:
    """Raise unless ``runtime_name`` is available on ``cluster``."""
    if runtime_name.lower() == "bare-metal":
        return
    if not cluster.supports_runtime(runtime_name):
        raise RuntimeNotInstalledError(
            f"{runtime_name} is not installed on {cluster.name} "
            f"(available: {sorted(cluster.installed_runtimes)})"
        )


def check_admin_for_daemon(runtime_name: str, cluster: "ClusterSpec") -> None:
    """Docker's root daemon requires administrative rights (§A)."""
    if runtime_name.lower() == "docker" and not cluster.admin_rights:
        raise CompatibilityError(
            f"Docker needs a root-owned daemon; no admin rights on "
            f"{cluster.name}"
        )


def network_path_for(
    runtime_name: str,
    technique: BuildTechnique | None,
    fabric: FabricSpec,
) -> NetworkPath:
    """The path MPI traffic takes for a (runtime, build technique) pair.

    - bare-metal: always native;
    - Docker: always the bridge+NAT path (network namespace);
    - Singularity/Shifter/Charliecloud: host network namespace, so the
      path is decided by the *image* — system-specific images drive the
      fabric natively, self-contained ones carry a TCP-only MPI and fall
      back.
    """
    rt = runtime_name.lower()
    if rt == "bare-metal":
        return NetworkPath.HOST_NATIVE
    if rt == "docker":
        return NetworkPath.BRIDGE_NAT
    if rt in ("singularity", "shifter", "charliecloud"):
        if technique is BuildTechnique.SYSTEM_SPECIFIC:
            return NetworkPath.HOST_NATIVE
        return NetworkPath.TCP_FALLBACK
    raise CompatibilityError(f"unknown runtime {runtime_name!r}")
