"""CPU models for the three ISAs evaluated in the paper.

The portability study (§B.2) spans Intel Skylake (x86-64), IBM Power9
(ppc64le) and Cavium ThunderX (aarch64); the solutions study runs on Intel
Haswell.  A :class:`CpuSpec` captures what the performance model needs:
core count, clock, peak DP flops per cycle per core, and sustained memory
bandwidth per socket.  Sustained efficiency for a memory-bound CFD code is
applied by the work model, not here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Architecture(enum.Enum):
    """Instruction-set architecture of a CPU (container-image dimension)."""

    X86_64 = "x86_64"
    PPC64LE = "ppc64le"
    AARCH64 = "aarch64"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class CpuSpec:
    """A CPU socket model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"Intel Xeon Platinum 8160"``.
    arch:
        ISA; container images only run on matching ISAs.
    cores:
        Physical cores per socket.
    frequency_hz:
        Nominal clock frequency.
    flops_per_cycle:
        Peak double-precision flops per cycle per core (vector width ×
        FMA × pipes).
    mem_bandwidth:
        Sustained socket memory bandwidth, bytes/s.
    smt:
        Hardware threads per core (not used for peak, informational).
    """

    name: str
    arch: Architecture
    cores: int
    frequency_hz: float
    flops_per_cycle: float
    mem_bandwidth: float
    smt: int = 1

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")
        if self.frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")
        if self.flops_per_cycle <= 0:
            raise ValueError("flops_per_cycle must be positive")
        if self.mem_bandwidth <= 0:
            raise ValueError("mem_bandwidth must be positive")
        if self.smt < 1:
            raise ValueError("smt must be >= 1")

    @property
    def peak_flops_per_core(self) -> float:
        """Peak DP flop/s of one core."""
        return self.frequency_hz * self.flops_per_cycle

    @property
    def peak_flops(self) -> float:
        """Peak DP flop/s of the whole socket."""
        return self.peak_flops_per_core * self.cores


# --------------------------------------------------------------------------
# The four CPU models appearing in the paper's experimental environment.
# Peak flops/cycle: Haswell AVX2+2×FMA = 16; Skylake AVX-512+2×FMA = 32;
# Power9 2×(2-wide VSX FMA) = 8; ThunderX CN8890 has a scalar FPU (no FMA
# pipe pairing) = 2.
# --------------------------------------------------------------------------

XEON_E5_2697V3 = CpuSpec(
    name="Intel Xeon E5-2697 v3",
    arch=Architecture.X86_64,
    cores=14,
    frequency_hz=2.6e9,
    flops_per_cycle=16,
    mem_bandwidth=68e9 / 2,  # per socket share of 4-ch DDR4-2133
    smt=2,
)

XEON_PLATINUM_8160 = CpuSpec(
    name="Intel Xeon Platinum 8160",
    arch=Architecture.X86_64,
    cores=24,
    frequency_hz=2.1e9,
    flops_per_cycle=32,
    mem_bandwidth=119e9 / 2,  # 6-ch DDR4-2666 per socket share
    smt=2,
)

POWER9_8335_GTG = CpuSpec(
    name="IBM Power9 8335-GTG",
    arch=Architecture.PPC64LE,
    cores=20,
    frequency_hz=3.0e9,
    flops_per_cycle=8,
    mem_bandwidth=120e9,
    smt=4,
)

THUNDERX_CN8890 = CpuSpec(
    name="Cavium ThunderX CN8890",
    arch=Architecture.AARCH64,
    cores=48,
    frequency_hz=2.0e9,
    flops_per_cycle=2,
    mem_bandwidth=40e9,
    smt=1,
)
