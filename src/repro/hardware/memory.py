"""Node memory model.

Containers add no measurable memory-access cost, but the memory subsystem
matters twice in the reproduction: (a) shared-memory MPI transfers inside a
node are bounded by copy bandwidth, and (b) cgroup memory limits (Docker)
can cap the resident set.  :class:`MemorySpec` carries the few numbers the
simulator needs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemorySpec:
    """Main-memory configuration of a node.

    Attributes
    ----------
    capacity:
        Installed DRAM in bytes.
    copy_bandwidth:
        Sustained single-copy (memcpy) bandwidth in bytes/s, the rate at
        which shared-memory MPI messages move.
    numa_domains:
        Number of NUMA domains (sockets, usually); cross-domain traffic
        pays :attr:`numa_penalty`.
    numa_penalty:
        Multiplier (>= 1) on copy time when crossing NUMA domains.
    """

    capacity: float
    copy_bandwidth: float
    numa_domains: int = 2
    numa_penalty: float = 1.4

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.copy_bandwidth <= 0:
            raise ValueError("copy_bandwidth must be positive")
        if self.numa_domains < 1:
            raise ValueError("numa_domains must be >= 1")
        if self.numa_penalty < 1.0:
            raise ValueError("numa_penalty must be >= 1")

    def effective_copy_bandwidth(self, cross_numa: bool) -> float:
        """Copy bandwidth, derated when the copy crosses NUMA domains."""
        if cross_numa and self.numa_domains > 1:
            return self.copy_bandwidth / self.numa_penalty
        return self.copy_bandwidth


GIB = float(2**30)


def gib(n: float) -> float:
    """Convenience: ``n`` gibibytes in bytes."""
    return n * GIB
