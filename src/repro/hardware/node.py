"""Compute-node model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cpu import Architecture, CpuSpec
from repro.hardware.memory import MemorySpec


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: sockets, memory, and local storage.

    Attributes
    ----------
    cpu:
        The socket model (all sockets identical).
    sockets:
        Number of sockets.
    memory:
        DRAM configuration; ``memory.copy_bandwidth`` is the *aggregate*
        rate available to intra-node shared-memory MPI traffic.
    local_disk_bandwidth:
        Sequential local-disk bandwidth, bytes/s; governs container image
        extraction and loop-mount read costs during deployment.
    """

    cpu: CpuSpec
    sockets: int
    memory: MemorySpec
    local_disk_bandwidth: float = 0.5e9

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ValueError("sockets must be >= 1")
        if self.local_disk_bandwidth <= 0:
            raise ValueError("local_disk_bandwidth must be positive")

    @property
    def cores(self) -> int:
        """Total physical cores in the node."""
        return self.cpu.cores * self.sockets

    @property
    def arch(self) -> Architecture:
        """Node ISA (that of its CPUs)."""
        return self.cpu.arch

    @property
    def peak_flops(self) -> float:
        """Peak DP flop/s of the node."""
        return self.cpu.peak_flops * self.sockets

    def core_flops(self) -> float:
        """Peak DP flop/s of a single core."""
        return self.cpu.peak_flops_per_core
