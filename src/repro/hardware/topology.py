"""Switch-level interconnect topology.

The flat model treats the fabric as a non-blocking crossbar limited only
by the NICs.  Real machines hang nodes off leaf switches whose uplinks
are *oversubscribed* (MareNostrum4's Omni-Path islands run 2:1), so
traffic leaving a leaf contends for less bandwidth than the sum of its
NICs.  :class:`SwitchTopology` adds that layer; the topology ablation
quantifies what the flat assumption hides.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SwitchTopology:
    """A one-level leaf-switch topology.

    Attributes
    ----------
    nodes_per_switch:
        Nodes attached to each leaf switch.
    oversubscription:
        Ratio of attached-NIC bandwidth to uplink bandwidth (1.0 =
        non-blocking, 2.0 = half the bandwidth leaves the leaf).
    """

    nodes_per_switch: int
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.nodes_per_switch < 1:
            raise ValueError("nodes_per_switch must be >= 1")
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1")

    def switch_of(self, node_id: int) -> int:
        """The leaf switch hosting ``node_id``."""
        if node_id < 0:
            raise ValueError("node_id must be >= 0")
        return node_id // self.nodes_per_switch

    def same_switch(self, a: int, b: int) -> bool:
        """Whether two nodes share a leaf (no uplink crossing)."""
        return self.switch_of(a) == self.switch_of(b)

    def n_switches(self, n_nodes: int) -> int:
        """Leaf switches needed for ``n_nodes``."""
        return -(-n_nodes // self.nodes_per_switch)

    def uplink_bandwidth(self, nic_bandwidth: float) -> float:
        """Aggregate uplink bytes/s of one leaf switch."""
        if nic_bandwidth <= 0:
            raise ValueError("nic_bandwidth must be positive")
        return nic_bandwidth * self.nodes_per_switch / self.oversubscription


#: MareNostrum4's published Omni-Path island configuration class.
MN4_OPA_ISLANDS = SwitchTopology(nodes_per_switch=48, oversubscription=2.0)

#: A non-blocking reference.
NON_BLOCKING = SwitchTopology(nodes_per_switch=48, oversubscription=1.0)
