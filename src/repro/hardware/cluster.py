"""Cluster specification and its simulation-time instantiation.

:class:`ClusterSpec` is pure data (what a site publishes about its
machine); :class:`Cluster` wires the spec into a DES
:class:`~repro.des.engine.Environment`, creating per-node NIC links, the
intra-node shared-memory link, local disks, and the shared parallel
filesystem.  MPI and the container runtimes then operate on the
:class:`Cluster` object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.des.engine import Environment
from repro.des.events import Event
from repro.des.links import FairShareLink
from repro.des.resources import Resource
from repro.hardware.network import FabricSpec, NetworkPath, PathParams
from repro.hardware.node import NodeSpec
from repro.hardware.topology import SwitchTopology


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a cluster.

    Attributes
    ----------
    name / site:
        Identification, as in the paper's §A.
    num_nodes:
        Nodes available.
    node:
        Per-node hardware.
    fabric:
        Inter-node interconnect.
    shared_fs_bandwidth:
        Aggregate parallel-filesystem bandwidth (bytes/s) shared by all
        nodes; image pulls and I/O contend here.
    admin_rights:
        Whether the experimenters have root — Docker's daemon can only be
        deployed where this is true (Lenox, in the paper).
    installed_runtimes:
        Mapping runtime name → version string, as published.
    """

    name: str
    site: str
    num_nodes: int
    node: NodeSpec
    fabric: FabricSpec
    shared_fs_bandwidth: float = 10e9
    admin_rights: bool = False
    installed_runtimes: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.shared_fs_bandwidth <= 0:
            raise ValueError("shared_fs_bandwidth must be positive")

    def total_cores(self) -> int:
        """All physical cores in the machine."""
        return self.num_nodes * self.node.cores

    def supports_runtime(self, runtime_name: str) -> bool:
        """Whether ``runtime_name`` (case-insensitive) is installed."""
        return runtime_name.lower() in {k.lower() for k in self.installed_runtimes}


class NodeSim:
    """A node instantiated inside a simulation environment."""

    def __init__(self, env: Environment, spec: NodeSpec, node_id: int) -> None:
        self.env = env
        self.spec = spec
        self.node_id = node_id
        # Full-duplex NIC: independent transmit and receive pipes.
        self.nic_tx: Optional[FairShareLink] = None
        self.nic_rx: Optional[FairShareLink] = None
        self.shm = FairShareLink(
            env, bandwidth=spec.memory.copy_bandwidth, name=f"shm[{node_id}]"
        )
        self.disk = FairShareLink(
            env, bandwidth=spec.local_disk_bandwidth, name=f"disk[{node_id}]"
        )
        self.cores = Resource(env, capacity=spec.cores)
        #: Serialized softirq pipeline for bridge+NAT traffic (Docker only;
        #: created by :meth:`Cluster.wire_network` when the path needs it).
        self.bridge: Optional[Resource] = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NodeSim {self.node_id} cores={self.spec.cores}>"


class Cluster:
    """A :class:`ClusterSpec` bound to a DES environment.

    Parameters
    ----------
    env:
        Simulation environment.
    spec:
        Cluster description.
    num_nodes:
        How many nodes to instantiate (defaults to the job's needs rather
        than the whole machine, to keep simulations light).
    """

    def __init__(
        self,
        env: Environment,
        spec: ClusterSpec,
        num_nodes: Optional[int] = None,
    ) -> None:
        if num_nodes is None:
            num_nodes = spec.num_nodes
        if not 1 <= num_nodes <= spec.num_nodes:
            raise ValueError(
                f"num_nodes={num_nodes} outside [1, {spec.num_nodes}] "
                f"for {spec.name}"
            )
        self.env = env
        self.spec = spec
        self.nodes = [NodeSim(env, spec.node, i) for i in range(num_nodes)]
        self.shared_fs = FairShareLink(
            env, bandwidth=spec.shared_fs_bandwidth, name=f"{spec.name}-pfs"
        )
        self._nic_params: Optional[PathParams] = None
        self._topology: Optional[SwitchTopology] = None
        self._uplinks_up: list[FairShareLink] = []
        self._uplinks_down: list[FairShareLink] = []

    # -- network wiring -------------------------------------------------------
    def wire_network(
        self,
        path: NetworkPath,
        topology: Optional[SwitchTopology] = None,
    ) -> PathParams:
        """Create per-node NIC links for traffic taking ``path``.

        With a :class:`SwitchTopology`, traffic between different leaf
        switches additionally traverses both leaves' (possibly
        oversubscribed) uplinks.  Returns the effective path parameters
        (the MPI cost model pays the latency; the links model only
        bandwidth sharing).
        """
        params = self.spec.fabric.path_params(path)
        self._nic_params = params
        self._topology = topology
        self._uplinks_up = []
        self._uplinks_down = []
        if topology is not None:
            for s in range(topology.n_switches(len(self.nodes))):
                bw = topology.uplink_bandwidth(params.bandwidth)
                self._uplinks_up.append(
                    FairShareLink(self.env, bandwidth=bw, name=f"uplink-up[{s}]")
                )
                self._uplinks_down.append(
                    FairShareLink(self.env, bandwidth=bw, name=f"uplink-dn[{s}]")
                )
        for node in self.nodes:
            node.nic_tx = FairShareLink(
                self.env,
                bandwidth=params.bandwidth,
                per_byte_overhead=params.per_byte_overhead,
                name=f"nic-tx[{node.node_id}]",
            )
            node.nic_rx = FairShareLink(
                self.env,
                bandwidth=params.bandwidth,
                per_byte_overhead=params.per_byte_overhead,
                name=f"nic-rx[{node.node_id}]",
            )
            node.bridge = (
                Resource(self.env, capacity=1)
                if path is NetworkPath.BRIDGE_NAT
                else None
            )
        return params

    @property
    def nic_params(self) -> PathParams:
        """Parameters set by the last :meth:`wire_network` call."""
        if self._nic_params is None:
            raise RuntimeError("wire_network() has not been called")
        return self._nic_params

    # -- transfers --------------------------------------------------------------
    def transfer_segments(self, src: int, dst: int, nbytes: float) -> tuple[Event, ...]:
        """The per-segment completion events of :meth:`transfer`.

        Exposed separately (without the joining :class:`AllOf`) so the MPI
        delivery chain can count the segments down with a plain callback
        instead of allocating a condition event per message.  Segment
        order: tx, rx, then the two switch uplinks when the flow crosses
        leaves.
        """
        if src == dst:
            return (self.nodes[src].shm.transfer(nbytes),)
        tx = self.nodes[src].nic_tx
        rx = self.nodes[dst].nic_rx
        if tx is None or rx is None:
            raise RuntimeError("wire_network() must be called before transfer()")
        topo = self._topology
        if topo is not None and not topo.same_switch(src, dst):
            return (
                tx.transfer(nbytes),
                rx.transfer(nbytes),
                self._uplinks_up[topo.switch_of(src)].transfer(nbytes),
                self._uplinks_down[topo.switch_of(dst)].transfer(nbytes),
            )
        return (tx.transfer(nbytes), rx.transfer(nbytes))

    def transfer_cb(self, src: int, dst: int, nbytes: float, notify) -> int:
        """Event-free :meth:`transfer_segments`: each segment calls
        ``notify()`` directly on completion (see
        :meth:`FairShareLink.transfer_cb`); returns the segment count.

        Segments with zero wire bytes complete *during this call*, so
        callers must prime their countdown before invoking it.
        """
        if src == dst:
            self.nodes[src].shm.transfer_cb(nbytes, notify)
            return 1
        tx = self.nodes[src].nic_tx
        rx = self.nodes[dst].nic_rx
        if tx is None or rx is None:
            raise RuntimeError("wire_network() must be called before transfer()")
        topo = self._topology
        if topo is not None and not topo.same_switch(src, dst):
            tx.transfer_cb(nbytes, notify)
            rx.transfer_cb(nbytes, notify)
            self._uplinks_up[topo.switch_of(src)].transfer_cb(nbytes, notify)
            self._uplinks_down[topo.switch_of(dst)].transfer_cb(nbytes, notify)
            return 4
        tx.transfer_cb(nbytes, notify)
        rx.transfer_cb(nbytes, notify)
        return 2

    def transfer(self, src: int, dst: int, nbytes: float) -> Event:
        """Move ``nbytes`` between nodes (bandwidth part only).

        Inter-node flows occupy the source's transmit pipe and the
        destination's receive pipe concurrently and complete when both are
        drained; intra-node flows share the node's memory-copy link.
        Latency is *not* included — the MPI layer pays it per message.
        """
        segments = self.transfer_segments(src, dst, nbytes)
        if len(segments) == 1:
            return segments[0]
        return self.env.all_of(segments)

    def node(self, node_id: int) -> NodeSim:
        """The :class:`NodeSim` with the given id."""
        return self.nodes[node_id]

    def __len__(self) -> int:
        return len(self.nodes)
