"""Interconnect fabric models and container network paths.

The paper's central portability finding hinges on *which network path* an
MPI message takes:

- ``HOST_NATIVE`` — the host's fabric stack (verbs / PSM2), available to
  bare-metal runs, Singularity/Shifter (host network, Mount+PID namespaces
  only), and to *system-specific* images that bind the host MPI.
- ``BRIDGE_NAT`` — Docker's default bridge + NAT through a network
  namespace and veth pair: TCP only, extra per-message latency and
  per-byte encapsulation overhead, and a software-switch bandwidth cap.
- ``TCP_FALLBACK`` — what a *self-contained* image gets on a cluster whose
  fast fabric needs host libraries: TCP over IPoIB/IPoFabric, with an
  order-of-magnitude latency penalty and a fraction of the native
  bandwidth (paper Figs. 2–3).

:meth:`FabricSpec.path_params` maps a (fabric, path) pair to the effective
latency / bandwidth / per-byte overhead used by the MPI cost model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class FabricKind(enum.Enum):
    """Physical interconnect family."""

    ETHERNET_TCP = "ethernet-tcp"
    INFINIBAND = "infiniband"
    OMNIPATH = "omni-path"


class NetworkPath(enum.Enum):
    """The software path MPI traffic takes out of a process."""

    HOST_NATIVE = "host-native"
    BRIDGE_NAT = "bridge-nat"
    TCP_FALLBACK = "tcp-fallback"


@dataclass(frozen=True)
class PathParams:
    """Effective point-to-point parameters of a fabric for one path."""

    latency: float
    bandwidth: float
    per_byte_overhead: float = 1.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.per_byte_overhead < 1.0:
            raise ValueError("per_byte_overhead must be >= 1")


# Bridge/NAT constants: a veth pair + NAT adds ~2 softirq hops per
# direction and the kernel software switch tops out well below fast
# fabrics.  Derived from published docker-vs-host netperf deltas.
_BRIDGE_EXTRA_LATENCY = 35e-6
_BRIDGE_BYTE_OVERHEAD = 1.08
_BRIDGE_BW_CAP = 1.4e9  # bytes/s, CPU-bound soft switching

#: CPU time one softirq core spends forwarding one message through the
#: docker0 bridge + NAT (veth pair, bridge lookup, conntrack/NAT rewrite
#: — Docker 1.x era).  This work is *serialized per node* (a single
#: ksoftirqd), which is what makes Docker's MPI collapse as rank counts
#: grow (Fig. 1): message volume scales with ranks, the bridge does not.
BRIDGE_CPU_PER_MESSAGE = 120e-6


@dataclass(frozen=True)
class FabricSpec:
    """An inter-node fabric.

    Attributes
    ----------
    name:
        e.g. ``"Intel Omni-Path"``.
    kind:
        Physical family; decides whether a self-contained container can
        drive it (TCP fabrics need no host stack).
    bandwidth:
        Native per-port bandwidth, bytes/s.
    latency:
        Native small-message one-way latency, seconds.
    needs_host_stack:
        True when user-space fabric libraries (verbs, PSM2) are required
        for native speed — the crux of the system-specific vs.
        self-contained distinction.
    fallback_bandwidth / fallback_latency:
        TCP-over-fabric (IPoIB-style) parameters used by the
        ``TCP_FALLBACK`` path; default to the native numbers for fabrics
        that are already TCP.
    """

    name: str
    kind: FabricKind
    bandwidth: float
    latency: float
    needs_host_stack: bool
    fallback_bandwidth: Optional[float] = None
    fallback_latency: Optional[float] = None

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        if self.needs_host_stack:
            if self.fallback_bandwidth is None or self.fallback_latency is None:
                raise ValueError(
                    "fabrics that need a host stack must define TCP fallback "
                    "parameters"
                )

    def path_params(self, path: NetworkPath) -> PathParams:
        """Effective parameters for MPI traffic taking ``path``."""
        if path is NetworkPath.HOST_NATIVE:
            return PathParams(self.latency, self.bandwidth)
        if path is NetworkPath.TCP_FALLBACK:
            if not self.needs_host_stack:
                # Plain TCP fabric: the "fallback" is the native path with
                # in-container TCP framing.
                return PathParams(self.latency, self.bandwidth, 1.02)
            return PathParams(
                float(self.fallback_latency),
                float(self.fallback_bandwidth),
                1.05,
            )
        if path is NetworkPath.BRIDGE_NAT:
            base = self.path_params(NetworkPath.TCP_FALLBACK)
            return PathParams(
                base.latency + _BRIDGE_EXTRA_LATENCY,
                min(base.bandwidth, _BRIDGE_BW_CAP),
                base.per_byte_overhead * _BRIDGE_BYTE_OVERHEAD,
            )
        raise ValueError(f"unknown path {path!r}")  # pragma: no cover

    def supports_native_path(self, has_host_stack: bool) -> bool:
        """Whether a process with/without host fabric libs gets native speed."""
        return has_host_stack or not self.needs_host_stack


# --------------------------------------------------------------------------
# The fabrics of the paper's four clusters.
# --------------------------------------------------------------------------

GIGABIT_ETHERNET = FabricSpec(
    name="1GbE (TCP)",
    kind=FabricKind.ETHERNET_TCP,
    bandwidth=0.125e9,  # 1 Gbit/s
    latency=50e-6,
    needs_host_stack=False,
)

FORTY_GIG_ETHERNET = FabricSpec(
    name="40GbE (TCP)",
    kind=FabricKind.ETHERNET_TCP,
    bandwidth=5.0e9,
    latency=25e-6,
    needs_host_stack=False,
)

INFINIBAND_EDR = FabricSpec(
    name="Mellanox InfiniBand EDR",
    kind=FabricKind.INFINIBAND,
    bandwidth=12.5e9,  # 100 Gbit/s
    latency=1.0e-6,
    needs_host_stack=True,
    fallback_bandwidth=2.5e9,  # IPoIB, CPU bound
    fallback_latency=30e-6,
)

OMNIPATH_100 = FabricSpec(
    name="Intel Omni-Path 100",
    kind=FabricKind.OMNIPATH,
    bandwidth=12.5e9,
    latency=1.1e-6,
    needs_host_stack=True,
    # IPoFabric on OPA is fully CPU-onloaded; under the congestion of a
    # collective-heavy job its effective small-message latency sits in
    # the 100-200 us class, which is why the paper's self-contained runs
    # stop scaling (Fig. 3).
    fallback_bandwidth=1.6e9,
    fallback_latency=150e-6,
)

# Intra-node shared-memory "fabric" parameters used by the MPI model.
SHM_LATENCY = 0.4e-6
SHM_BANDWIDTH = 8.0e9
