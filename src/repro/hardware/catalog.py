"""The four clusters of the paper's experimental environment (§A).

Numbers are taken from the paper where stated (node counts, CPU models,
core counts, fabric types, installed runtime versions) and from public
specifications otherwise (clocks, bandwidths).
"""

from __future__ import annotations

from repro.hardware.cluster import ClusterSpec
from repro.hardware.cpu import (
    POWER9_8335_GTG,
    THUNDERX_CN8890,
    XEON_E5_2697V3,
    XEON_PLATINUM_8160,
)
from repro.hardware.memory import MemorySpec, gib
from repro.hardware.network import (
    FORTY_GIG_ETHERNET,
    GIGABIT_ETHERNET,
    INFINIBAND_EDR,
    OMNIPATH_100,
)
from repro.hardware.node import NodeSpec

#: Lenovo-owned four-node cluster; the only machine with admin rights,
#: hence the only one where Docker (root daemon) could be deployed.
LENOX = ClusterSpec(
    name="Lenox",
    site="Lenovo",
    num_nodes=4,
    node=NodeSpec(
        cpu=XEON_E5_2697V3,
        sockets=2,
        memory=MemorySpec(capacity=gib(128), copy_bandwidth=35e9),
        local_disk_bandwidth=0.18e9,  # spinning disk
    ),
    fabric=GIGABIT_ETHERNET,
    shared_fs_bandwidth=0.11e9,  # NFS over the same 1GbE
    admin_rights=True,
    installed_runtimes={
        "docker": "1.11.1",
        "singularity": "2.4.5",
        "shifter": "16.08.3",
    },
)

#: BSC Tier-0 machine; Skylake + Omni-Path, Singularity only.
MARENOSTRUM4 = ClusterSpec(
    name="MareNostrum4",
    site="Barcelona Supercomputing Center",
    num_nodes=3456,
    node=NodeSpec(
        cpu=XEON_PLATINUM_8160,
        sockets=2,
        memory=MemorySpec(capacity=gib(96), copy_bandwidth=60e9),
        local_disk_bandwidth=0.5e9,
    ),
    fabric=OMNIPATH_100,
    shared_fs_bandwidth=80e9,  # GPFS
    admin_rights=False,
    installed_runtimes={"singularity": "2.4.2"},
)

#: BSC Power9 cluster; EDR InfiniBand, Singularity only.
CTE_POWER = ClusterSpec(
    name="CTE-POWER",
    site="Barcelona Supercomputing Center",
    num_nodes=52,
    node=NodeSpec(
        cpu=POWER9_8335_GTG,
        sockets=2,
        memory=MemorySpec(capacity=gib(512), copy_bandwidth=90e9),
        local_disk_bandwidth=1.0e9,  # NVMe
    ),
    fabric=INFINIBAND_EDR,
    shared_fs_bandwidth=40e9,
    admin_rights=False,
    installed_runtimes={"singularity": "2.5.1"},
)

#: Mont-Blanc project Arm mini-cluster; 40GbE TCP, Singularity only.
THUNDERX = ClusterSpec(
    name="ThunderX",
    site="Mont-Blanc project (BSC)",
    num_nodes=4,
    node=NodeSpec(
        cpu=THUNDERX_CN8890,
        sockets=2,
        memory=MemorySpec(capacity=gib(128), copy_bandwidth=25e9),
        local_disk_bandwidth=0.4e9,
    ),
    fabric=FORTY_GIG_ETHERNET,
    shared_fs_bandwidth=1.0e9,
    admin_rights=False,
    installed_runtimes={"singularity": "2.5.2"},
)

ALL_CLUSTERS: dict[str, ClusterSpec] = {
    spec.name: spec for spec in (LENOX, MARENOSTRUM4, CTE_POWER, THUNDERX)
}


def get_cluster(name: str) -> ClusterSpec:
    """Look up a cluster by (case-insensitive) name."""
    for key, spec in ALL_CLUSTERS.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError(
        f"unknown cluster {name!r}; available: {sorted(ALL_CLUSTERS)}"
    )
