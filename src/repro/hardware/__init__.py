"""Hardware models: CPUs, nodes, fabrics, clusters.

The four clusters of the paper (§A, *Experimental environment*) are
available from :mod:`repro.hardware.catalog`:

>>> from repro.hardware import catalog
>>> catalog.MARENOSTRUM4.total_cores()
165888

All quantities use SI base units: seconds, bytes, bytes/second, flop/s.
"""

from repro.hardware.cpu import Architecture, CpuSpec
from repro.hardware.memory import MemorySpec
from repro.hardware.node import NodeSpec
from repro.hardware.network import FabricKind, FabricSpec, NetworkPath
from repro.hardware.cluster import Cluster, ClusterSpec, NodeSim

__all__ = [
    "Architecture",
    "Cluster",
    "ClusterSpec",
    "CpuSpec",
    "FabricKind",
    "FabricSpec",
    "MemorySpec",
    "NetworkPath",
    "NodeSim",
    "NodeSpec",
]
