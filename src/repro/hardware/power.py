"""Node power and job energy model.

The ThunderX machine in the paper's testbed comes from the Mont-Blanc
project, whose premise is energy-efficient HPC from mobile-class parts —
a comparison the abstract leaves on the table.  This module adds the
energy dimension: per-CPU power envelopes and a simple phase-based energy
integral (compute at load power, communication at a fraction of it),
which the three-architecture example uses to compare energy-to-solution.

Power figures follow the parts' published TDPs and typical idle floors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.metrics import ExperimentResult
    from repro.hardware.cluster import ClusterSpec


@dataclass(frozen=True)
class PowerEnvelope:
    """Per-socket power model (watts)."""

    tdp: float
    idle_fraction: float = 0.35
    #: Fraction of TDP drawn while the cores spin in communication waits.
    comm_fraction: float = 0.62

    def __post_init__(self) -> None:
        if self.tdp <= 0:
            raise ValueError("tdp must be positive")
        if not 0 <= self.idle_fraction <= 1:
            raise ValueError("idle_fraction must be in [0, 1]")
        if not 0 <= self.comm_fraction <= 1:
            raise ValueError("comm_fraction must be in [0, 1]")

    @property
    def active_watts(self) -> float:
        return self.tdp

    @property
    def comm_watts(self) -> float:
        return self.tdp * self.comm_fraction

    @property
    def idle_watts(self) -> float:
        return self.tdp * self.idle_fraction


#: Published TDP-class envelopes for the testbed CPUs.
POWER_ENVELOPES: dict[str, PowerEnvelope] = {
    "Intel Xeon E5-2697 v3": PowerEnvelope(tdp=145.0),
    "Intel Xeon Platinum 8160": PowerEnvelope(tdp=150.0),
    "IBM Power9 8335-GTG": PowerEnvelope(tdp=190.0),
    "Cavium ThunderX CN8890": PowerEnvelope(tdp=95.0),
}

#: Non-CPU node overhead (DRAM, NIC, fans, VRs) as a fraction of CPU TDP.
NODE_OVERHEAD_FRACTION = 0.45


def node_power(cluster: "ClusterSpec", phase: str) -> float:
    """Instantaneous node power (W) in a given phase.

    ``phase`` is one of ``"compute"``, ``"comm"``, ``"idle"``.
    """
    envelope = POWER_ENVELOPES[cluster.node.cpu.name]
    if phase == "compute":
        cpu = envelope.active_watts
    elif phase == "comm":
        cpu = envelope.comm_watts
    elif phase == "idle":
        cpu = envelope.idle_watts
    else:
        raise ValueError(f"unknown phase {phase!r}")
    sockets = cluster.node.sockets
    return cpu * sockets * (1.0 + NODE_OVERHEAD_FRACTION)


def job_energy(
    cluster: "ClusterSpec",
    n_nodes: int,
    elapsed_seconds: float,
    phase_fractions: Mapping[str, float],
) -> float:
    """Energy-to-solution in joules.

    Communication-type phases (halo, collective, coupling) draw the comm
    power; the rest of the elapsed time draws full compute power.
    """
    if elapsed_seconds < 0:
        raise ValueError("elapsed_seconds must be >= 0")
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    comm_share = sum(
        phase_fractions.get(k, 0.0) for k in ("halo", "collective", "coupling")
    )
    comm_share = min(max(comm_share, 0.0), 1.0)
    compute_seconds = elapsed_seconds * (1.0 - comm_share)
    comm_seconds = elapsed_seconds * comm_share
    per_node = (
        compute_seconds * node_power(cluster, "compute")
        + comm_seconds * node_power(cluster, "comm")
    )
    return per_node * n_nodes


def energy_of(result: "ExperimentResult", cluster: "ClusterSpec") -> float:
    """Energy-to-solution (J) of an experiment result."""
    return job_energy(
        cluster,
        result.n_nodes,
        result.elapsed_seconds,
        result.phase_fractions,
    )
