"""Thread-to-core affinity layout.

Produces the cpuset each rank's thread team should be pinned to — the
input SLURM's binding (and Docker's cpuset cgroup) consumes.
"""

from __future__ import annotations


def thread_affinity(
    node_cores: int,
    ranks_on_node: int,
    threads_per_rank: int,
    local_rank: int,
) -> frozenset[int]:
    """Cores assigned to ``local_rank``'s thread team on one node.

    Compact, non-overlapping assignment (OMP_PROC_BIND=close): rank *i*
    gets cores ``[i*t, (i+1)*t)``.

    Raises
    ------
    ValueError
        If the request oversubscribes the node or the local rank is out
        of range.
    """
    if ranks_on_node < 1 or threads_per_rank < 1:
        raise ValueError("ranks and threads must be >= 1")
    if not 0 <= local_rank < ranks_on_node:
        raise ValueError(
            f"local_rank {local_rank} out of range [0, {ranks_on_node})"
        )
    needed = ranks_on_node * threads_per_rank
    if needed > node_cores:
        raise ValueError(
            f"{ranks_on_node} ranks x {threads_per_rank} threads = {needed} "
            f"cores > node's {node_cores}"
        )
    start = local_rank * threads_per_rank
    return frozenset(range(start, start + threads_per_rank))
