"""Fork-join threading model for hybrid MPI+OpenMP ranks.

Fig. 1's x-axis trades MPI ranks against OpenMP threads at constant core
count, so the within-rank model must capture why neither extreme wins:

- **Amdahl**: a serial fraction of each time step does not thread;
- **fork-join overhead**: every parallel region costs a fixed amount per
  thread (barrier + dispatch);
- **memory-bandwidth saturation**: a memory-bound CFD kernel stops
  scaling once the threads saturate the socket's bandwidth (roofline);
- **imbalance**: loop iterations never split perfectly.

The model converts a rank's serial compute time into its threaded time.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OpenMPModel:
    """Threaded execution-time model for one rank's timestep work.

    Attributes
    ----------
    parallel_fraction:
        Fraction of the serial time inside parallel regions (Amdahl's f).
    fork_join_cost:
        Seconds per parallel region per thread team (dispatch + barrier).
    regions_per_step:
        Parallel regions executed per time step.
    imbalance:
        Fractional slack of the slowest thread per region (0.03 = 3%).
    bandwidth_cores:
        Threads that saturate the socket memory bandwidth; beyond this the
        memory-bound part of the work stops speeding up.
    memory_bound_fraction:
        Share of the parallel work limited by bandwidth rather than flops.
    """

    parallel_fraction: float = 0.965
    fork_join_cost: float = 8e-6
    regions_per_step: int = 40
    imbalance: float = 0.035
    bandwidth_cores: int = 10
    memory_bound_fraction: float = 0.55

    def __post_init__(self) -> None:
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")
        if self.fork_join_cost < 0:
            raise ValueError("fork_join_cost must be >= 0")
        if self.regions_per_step < 0:
            raise ValueError("regions_per_step must be >= 0")
        if self.imbalance < 0:
            raise ValueError("imbalance must be >= 0")
        if self.bandwidth_cores < 1:
            raise ValueError("bandwidth_cores must be >= 1")
        if not 0.0 <= self.memory_bound_fraction <= 1.0:
            raise ValueError("memory_bound_fraction must be in [0, 1]")

    def effective_speedup(self, threads: int) -> float:
        """Speedup of the *parallel part* at ``threads`` threads."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        flops_speedup = threads / (1.0 + self.imbalance)
        bw_speedup = min(threads, self.bandwidth_cores) / (1.0 + self.imbalance)
        # Harmonic blend of the compute-bound and memory-bound shares.
        mb = self.memory_bound_fraction
        return 1.0 / ((1.0 - mb) / flops_speedup + mb / bw_speedup)

    def threaded_time(self, serial_seconds: float, threads: int) -> float:
        """Wall time of ``serial_seconds`` of work on ``threads`` threads."""
        if serial_seconds < 0:
            raise ValueError("serial_seconds must be >= 0")
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if threads == 1:
            return serial_seconds
        f = self.parallel_fraction
        par = serial_seconds * f / self.effective_speedup(threads)
        ser = serial_seconds * (1.0 - f)
        overhead = self.regions_per_step * self.fork_join_cost * threads
        return ser + par + overhead

    def parallel_efficiency(self, serial_seconds: float, threads: int) -> float:
        """Speedup(threads) / threads for the whole step."""
        t = self.threaded_time(serial_seconds, threads)
        if t == 0:
            return 1.0
        return serial_seconds / t / threads
