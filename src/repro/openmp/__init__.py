"""OpenMP within-rank threading model."""

from repro.openmp.model import OpenMPModel
from repro.openmp.affinity import thread_affinity

__all__ = ["OpenMPModel", "thread_affinity"]
